//! An exact rational number with a positive-denominator invariant.

use crate::int::{gcd, Int};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational `num/den` with `den > 0` and `gcd(num, den) == 1`.
///
/// Backed by `i128`; arithmetic panics on overflow rather than losing
/// precision (polyhedral computations on the paper's kernels stay far below
/// the 128-bit range once rows are gcd-normalized).
///
/// # Examples
/// ```
/// use pluto_linalg::Ratio;
/// let a = Ratio::new(2, 4);
/// assert_eq!(a, Ratio::new(1, 2));
/// assert_eq!(a + Ratio::from(1), Ratio::new(3, 2));
/// assert!(a < Ratio::from(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: Int,
    den: Int,
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a rational, normalizing sign and gcd.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: Int, den: Int) -> Ratio {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ratio { num, den }
    }

    /// The numerator (sign-carrying).
    pub fn numer(self) -> Int {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> Int {
        self.den
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Sign of the value: -1, 0 or 1.
    pub fn signum(self) -> Int {
        self.num.signum()
    }

    /// The largest integer `<= self`.
    pub fn floor(self) -> Int {
        crate::int::floor_div(self.num, self.den)
    }

    /// The smallest integer `>= self`.
    pub fn ceil(self) -> Int {
        crate::int::ceil_div(self.num, self.den)
    }

    /// The fractional part `self - floor(self)`, in `[0, 1)`.
    pub fn fract(self) -> Ratio {
        self - Ratio::from(self.floor())
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "reciprocal of zero");
        Ratio::new(self.den, self.num)
    }

    /// The absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Converts to `f64` (for reporting only — never used in decisions).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl From<Int> for Ratio {
    fn from(v: Int) -> Ratio {
        Ratio { num: v, den: 1 }
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Ratio {
        Ratio {
            num: v as Int,
            den: 1,
        }
    }
}

impl From<i32> for Ratio {
    fn from(v: i32) -> Ratio {
        Ratio {
            num: v as Int,
            den: 1,
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        let g = gcd(self.den, rhs.den);
        let l = self.den / g * rhs.den;
        let n = self
            .num
            .checked_mul(rhs.den / g)
            .and_then(|a| {
                rhs.num
                    .checked_mul(self.den / g)
                    .and_then(|b| a.checked_add(b))
            })
            .expect("rational add overflow");
        Ratio::new(n, l)
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-cancel before multiplying to limit growth.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let n = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational mul overflow");
        let d = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational mul overflow");
        Ratio::new(n, d)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    // Division by the reciprocal is the intended exact-rational identity.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  with b,d > 0.
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational cmp overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational cmp overflow");
        lhs.cmp(&rhs)
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::ZERO
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, -5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::from(2));
        assert_eq!(-a, Ratio::new(-1, 3));
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::new(-7, 2).fract(), Ratio::new(1, 2));
        assert_eq!(Ratio::from(5).fract(), Ratio::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert!(Ratio::new(3, 2) > Ratio::ONE);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }
}
