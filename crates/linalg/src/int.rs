//! Checked helper arithmetic on the workspace-wide integer type.
//!
//! All polyhedral coefficients in `pluto-rs` are [`Int`] (`i128`). Repeated
//! Fourier–Motzkin combination can grow coefficients quickly, so every
//! combining operation normalizes by the gcd; overflow nevertheless remains
//! possible in principle and is treated as a hard (panicking) error rather
//! than silently wrapping.

/// The integer coefficient type used throughout the tool-chain.
pub type Int = i128;

/// Greatest common divisor, always non-negative; `gcd(0, 0) == 0`.
///
/// # Examples
/// ```
/// use pluto_linalg::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 7), 7);
/// assert_eq!(gcd(0, 0), 0);
/// ```
pub fn gcd(a: Int, b: Int) -> Int {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a as Int
}

/// Least common multiple, always non-negative; `lcm(x, 0) == 0`.
///
/// # Panics
/// Panics on overflow.
///
/// # Examples
/// ```
/// use pluto_linalg::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// assert_eq!(lcm(-4, 6), 12);
/// assert_eq!(lcm(5, 0), 0);
/// ```
pub fn lcm(a: Int, b: Int) -> Int {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b).expect("lcm overflow").abs()
}

/// Floor division: the greatest integer `q` with `q * b <= a`.
///
/// Matches the `floord` macro emitted by CLooG-style code generators.
///
/// # Panics
/// Panics if `b == 0`.
///
/// # Examples
/// ```
/// use pluto_linalg::floor_div;
/// assert_eq!(floor_div(7, 2), 3);
/// assert_eq!(floor_div(-7, 2), -4);
/// assert_eq!(floor_div(7, -2), -4);
/// ```
pub fn floor_div(a: Int, b: Int) -> Int {
    assert!(b != 0, "floor_div by zero");
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: the least integer `q` with `q * b >= a` (for `b > 0`).
///
/// Matches the `ceild` macro emitted by CLooG-style code generators.
///
/// # Panics
/// Panics if `b == 0`.
///
/// # Examples
/// ```
/// use pluto_linalg::ceil_div;
/// assert_eq!(ceil_div(7, 2), 4);
/// assert_eq!(ceil_div(-7, 2), -3);
/// assert_eq!(ceil_div(6, 2), 3);
/// ```
pub fn ceil_div(a: Int, b: Int) -> Int {
    assert!(b != 0, "ceil_div by zero");
    -floor_div(-a, b)
}

/// Normalizes a row of integers by dividing out the gcd of all entries.
///
/// A zero row is left unchanged. Used after every Fourier–Motzkin
/// combination to keep coefficients small.
pub fn normalize_row(row: &mut [Int]) {
    let mut g = 0;
    for &x in row.iter() {
        g = gcd(g, x);
        if g == 1 {
            return;
        }
    }
    if g > 1 {
        for x in row.iter_mut() {
            *x /= g;
        }
    }
}

/// Normalizes an inequality row `a·x + c >= 0` (last entry the constant):
/// divides coefficients by their gcd and *floors* the constant, which is the
/// tightest sound strengthening over the integers.
///
/// # Examples
/// ```
/// use pluto_linalg::int::normalize_ineq;
/// // 2x + 3 >= 0  ==>  x + 1 >= 0 over the integers (x >= -3/2 -> x >= -1).
/// let mut row = vec![2, 3];
/// normalize_ineq(&mut row);
/// assert_eq!(row, vec![1, 1]);
/// ```
pub fn normalize_ineq(row: &mut [Int]) {
    let n = row.len();
    if n == 0 {
        return;
    }
    let mut g = 0;
    for &x in row[..n - 1].iter() {
        g = gcd(g, x);
    }
    if g > 1 {
        for x in row[..n - 1].iter_mut() {
            *x /= g;
        }
        row[n - 1] = floor_div(row[n - 1], g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 36), 12);
        assert_eq!(gcd(-48, 36), 12);
        assert_eq!(gcd(48, -36), 12);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, -9), 9);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(7, 3), 21);
        assert_eq!(lcm(0, 3), 0);
        assert_eq!(lcm(-2, 3), 6);
    }

    #[test]
    fn floor_ceil_agree_on_exact() {
        for a in -20..20 {
            for b in [-7, -3, -1, 1, 2, 5] {
                let f = floor_div(a, b);
                let c = ceil_div(a, b);
                // Defining property: remainder a - f*b lies in [0, |b|) with
                // the sign of b (floored division).
                let r = a - f * b;
                if b > 0 {
                    assert!((0..b).contains(&r), "floor property {a}/{b}");
                } else {
                    assert!((b + 1..=0).contains(&r), "floor property {a}/{b}");
                }
                if a % b == 0 {
                    assert_eq!(f, c);
                } else {
                    assert_eq!(c, f + 1);
                }
            }
        }
    }

    #[test]
    fn normalize_row_divides_gcd() {
        let mut r = vec![4, -8, 12];
        normalize_row(&mut r);
        assert_eq!(r, vec![1, -2, 3]);
        let mut z = vec![0, 0];
        normalize_row(&mut z);
        assert_eq!(z, vec![0, 0]);
    }

    #[test]
    fn normalize_ineq_floors_constant() {
        // 3x - 4 >= 0  ==> x >= 4/3 ==> x >= 2 ==> x - 2 >= 0.
        let mut r = vec![3, -4];
        normalize_ineq(&mut r);
        assert_eq!(r, vec![1, -2]);
        // constant-only row untouched
        let mut c = vec![0, 5];
        normalize_ineq(&mut c);
        assert_eq!(c, vec![0, 5]);
    }
}
