//! Dense matrices over exact integers and rationals.
//!
//! The Pluto algorithm needs only small dense matrices (hyperplane rows per
//! statement, dependence polyhedra faces), so a simple row-major `Vec`
//! representation with exact Gaussian elimination is both adequate and easy
//! to audit.

use crate::int::{lcm, normalize_row, Int};
use crate::ratio::Ratio;
use std::fmt;

/// A dense row-major matrix of [`Int`] entries.
///
/// # Examples
/// ```
/// use pluto_linalg::IntMatrix;
/// let m = IntMatrix::from_rows(vec![vec![1, 0], vec![1, 1]]);
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMatrix {
    rows: Vec<Vec<Int>>,
    cols: usize,
}

impl IntMatrix {
    /// Creates a matrix from rows.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<Int>>) -> IntMatrix {
        let cols = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == cols), "ragged matrix rows");
        IntMatrix { rows, cols }
    }

    /// An empty matrix (zero rows) over `cols` columns.
    pub fn empty(cols: usize) -> IntMatrix {
        IntMatrix {
            rows: Vec::new(),
            cols,
        }
    }

    /// The `n`-by-`n` identity.
    pub fn identity(n: usize) -> IntMatrix {
        let rows = (0..n)
            .map(|i| (0..n).map(|j| Int::from(i == j)).collect())
            .collect();
        IntMatrix { rows, cols: n }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[Int] {
        &self.rows[i]
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Int]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length differs from `num_cols` (unless the matrix
    /// is empty, in which case the width is adopted).
    pub fn push_row(&mut self, row: Vec<Int>) {
        if self.rows.is_empty() && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.rows.push(row);
    }

    /// The transpose.
    pub fn transpose(&self) -> IntMatrix {
        let mut out = vec![vec![0; self.rows.len()]; self.cols];
        for (i, r) in self.rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                out[j][i] = v;
            }
        }
        IntMatrix {
            rows: out,
            cols: self.rows.len(),
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch or overflow.
    pub fn mul(&self, rhs: &IntMatrix) -> IntMatrix {
        assert_eq!(self.cols, rhs.num_rows(), "matrix product shape mismatch");
        let mut out = vec![vec![0 as Int; rhs.cols]; self.rows.len()];
        for (i, r) in self.rows.iter().enumerate() {
            for (k, &a) in r.iter().enumerate() {
                if a == 0 {
                    continue;
                }
                for (o, &b) in out[i].iter_mut().zip(&rhs.rows[k]) {
                    *o = o
                        .checked_add(a.checked_mul(b).expect("matmul overflow"))
                        .expect("matmul overflow");
                }
            }
        }
        IntMatrix {
            rows: out,
            cols: rhs.cols,
        }
    }

    /// The rank (over the rationals).
    pub fn rank(&self) -> usize {
        self.to_rat().rank()
    }

    /// Converts to a rational matrix.
    pub fn to_rat(&self) -> RatMatrix {
        RatMatrix {
            rows: self
                .rows
                .iter()
                .map(|r| r.iter().map(|&v| Ratio::from(v)).collect())
                .collect(),
            cols: self.cols,
        }
    }

    /// Whether `candidate` is linearly independent of this matrix's rows.
    pub fn is_independent(&self, candidate: &[Int]) -> bool {
        let mut m = self.clone();
        if m.cols == 0 {
            m.cols = candidate.len();
        }
        let before = m.rank();
        m.push_row(candidate.to_vec());
        m.rank() == before + 1
    }
}

impl fmt::Debug for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMatrix {}x{} [", self.rows.len(), self.cols)?;
        for r in &self.rows {
            writeln!(f, "  {r:?}")?;
        }
        write!(f, "]")
    }
}

/// A dense row-major matrix of [`Ratio`] entries.
///
/// # Examples
/// ```
/// use pluto_linalg::RatMatrix;
/// let m = RatMatrix::from_i64(&[&[2, 1], &[4, 2]]);
/// assert_eq!(m.rank(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: Vec<Vec<Ratio>>,
    cols: usize,
}

impl RatMatrix {
    /// Creates a matrix from rational rows.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<Ratio>>) -> RatMatrix {
        let cols = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == cols), "ragged matrix rows");
        RatMatrix { rows, cols }
    }

    /// Convenience constructor from `i64` literals (used widely in tests).
    pub fn from_i64(rows: &[&[i64]]) -> RatMatrix {
        RatMatrix::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|&v| Ratio::from(v)).collect())
                .collect(),
        )
    }

    /// The `n`-by-`n` identity.
    pub fn identity(n: usize) -> RatMatrix {
        RatMatrix::from_rows(
            (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| if i == j { Ratio::ONE } else { Ratio::ZERO })
                        .collect()
                })
                .collect(),
        )
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[Ratio] {
        &self.rows[i]
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Ratio]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// The transpose.
    pub fn transpose(&self) -> RatMatrix {
        let mut out = vec![vec![Ratio::ZERO; self.rows.len()]; self.cols];
        for (i, r) in self.rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                out[j][i] = v;
            }
        }
        RatMatrix {
            rows: out,
            cols: self.rows.len(),
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &RatMatrix) -> RatMatrix {
        assert_eq!(self.cols, rhs.num_rows(), "matrix product shape mismatch");
        let mut out = vec![vec![Ratio::ZERO; rhs.cols]; self.rows.len()];
        for (i, r) in self.rows.iter().enumerate() {
            for (k, &a) in r.iter().enumerate() {
                if a.is_zero() {
                    continue;
                }
                for (o, &b) in out[i].iter_mut().zip(&rhs.rows[k]) {
                    *o += a * b;
                }
            }
        }
        RatMatrix {
            rows: out,
            cols: rhs.cols,
        }
    }

    /// Reduced row-echelon form (in place), returning the pivot columns.
    pub fn reduce(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..self.cols {
            if r == self.rows.len() {
                break;
            }
            // Find a pivot at or below row r in column c.
            let Some(p) = (r..self.rows.len()).find(|&i| !self.rows[i][c].is_zero()) else {
                continue;
            };
            self.rows.swap(r, p);
            let inv = self.rows[r][c].recip();
            for v in self.rows[r].iter_mut() {
                *v = *v * inv;
            }
            for i in 0..self.rows.len() {
                if i != r && !self.rows[i][c].is_zero() {
                    let f = self.rows[i][c];
                    for j in 0..self.cols {
                        let sub = f * self.rows[r][j];
                        self.rows[i][j] = self.rows[i][j] - sub;
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        pivots
    }

    /// The rank.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.reduce().len()
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<RatMatrix> {
        assert_eq!(self.rows.len(), self.cols, "inverse of non-square matrix");
        let n = self.cols;
        // Augment with identity and reduce.
        let mut aug = RatMatrix::from_rows(
            self.rows
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let mut row = r.clone();
                    row.extend((0..n).map(|j| if i == j { Ratio::ONE } else { Ratio::ZERO }));
                    row
                })
                .collect(),
        );
        let pivots = aug.reduce();
        if pivots.len() < n || pivots.iter().any(|&c| c >= n) {
            return None;
        }
        Some(RatMatrix::from_rows(
            aug.rows.into_iter().map(|r| r[n..].to_vec()).collect(),
        ))
    }

    /// A basis for the (right) null space `{x : M x = 0}`.
    pub fn null_space(&self) -> RatMatrix {
        let mut m = self.clone();
        let pivots = m.reduce();
        let pivot_set: Vec<usize> = pivots.clone();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivot_set.contains(c)).collect();
        let mut basis = Vec::new();
        for &fc in &free {
            let mut v = vec![Ratio::ZERO; self.cols];
            v[fc] = Ratio::ONE;
            for (ri, &pc) in pivot_set.iter().enumerate() {
                v[pc] = -m.rows[ri][fc];
            }
            basis.push(v);
        }
        RatMatrix {
            rows: basis,
            cols: self.cols,
        }
    }

    /// The orthogonal-complement projector of the row space,
    /// `H^⊥ = I − Hᵀ (H Hᵀ)⁻¹ H` (Eq. 6 of the paper).
    ///
    /// Rows of the result span the subspace orthogonal to the rows of
    /// `self`; its rank is `cols − rank(self)`. If `self` has no rows the
    /// identity is returned.
    ///
    /// # Panics
    /// Panics if the rows of `self` are linearly dependent (the Pluto search
    /// only ever calls this with an independent set of hyperplanes).
    pub fn orthogonal_complement(&self) -> RatMatrix {
        if self.rows.is_empty() {
            return RatMatrix::identity(self.cols);
        }
        let ht = self.transpose();
        let hht = self.mul(&ht);
        let inv = hht
            .inverse()
            .expect("orthogonal_complement: dependent hyperplane rows");
        let proj = ht.mul(&inv).mul(self);
        let mut out = RatMatrix::identity(self.cols);
        for i in 0..self.cols {
            for j in 0..self.cols {
                out.rows[i][j] = out.rows[i][j] - proj.rows[i][j];
            }
        }
        out
    }

    /// Scales each row to the smallest integer row with the same direction
    /// (clears denominators, divides by gcd) and drops zero rows.
    pub fn to_int_rows(&self) -> IntMatrix {
        let mut rows = Vec::new();
        for r in &self.rows {
            let mut l: Int = 1;
            for v in r {
                l = lcm(l, v.denom());
            }
            let mut row: Vec<Int> = r.iter().map(|v| v.numer() * (l / v.denom())).collect();
            normalize_row(&mut row);
            if row.iter().any(|&v| v != 0) {
                rows.push(row);
            }
        }
        if rows.is_empty() {
            IntMatrix::empty(self.cols)
        } else {
            IntMatrix::from_rows(rows)
        }
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows.len(), self.cols)?;
        for r in &self.rows {
            writeln!(f, "  {r:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_reduce() {
        let m = RatMatrix::from_i64(&[&[1, 2, 3], &[2, 4, 6], &[1, 0, 1]]);
        assert_eq!(m.rank(), 2);
        assert_eq!(RatMatrix::identity(4).rank(), 4);
        assert_eq!(RatMatrix::from_i64(&[&[0, 0]]).rank(), 0);
    }

    #[test]
    fn inverse_round_trip() {
        let m = RatMatrix::from_i64(&[&[2, 1], &[1, 1]]);
        let inv = m.inverse().unwrap();
        let prod = m.mul(&inv);
        assert_eq!(prod, RatMatrix::identity(2));
        let sing = RatMatrix::from_i64(&[&[1, 2], &[2, 4]]);
        assert!(sing.inverse().is_none());
    }

    #[test]
    fn null_space_is_annihilated() {
        let m = RatMatrix::from_i64(&[&[1, 1, 0], &[0, 1, 1]]);
        let ns = m.null_space();
        assert_eq!(ns.num_rows(), 1);
        let prod = m.mul(&ns.transpose());
        for r in prod.rows() {
            assert!(r.iter().all(|v| v.is_zero()));
        }
    }

    #[test]
    fn orthogonal_complement_of_e1() {
        let h = RatMatrix::from_i64(&[&[1, 0, 0]]);
        let perp = h.orthogonal_complement();
        assert_eq!(perp.rank(), 2);
        // Every row of perp is orthogonal to (1,0,0): first column zero.
        for r in perp.rows() {
            assert!(r[0].is_zero());
        }
    }

    #[test]
    fn orthogonal_complement_skewed() {
        // H = [(1,1)]: complement spanned by (1,-1) direction.
        let h = RatMatrix::from_i64(&[&[1, 1]]);
        let perp = h.orthogonal_complement();
        assert_eq!(perp.rank(), 1);
        // Every nonzero row is proportional to (1, -1).
        for r in perp.to_int_rows().rows() {
            assert_eq!(r[0] + r[1], 0);
            assert!(r[0] != 0);
        }
    }

    #[test]
    fn int_matrix_independence() {
        let mut m = IntMatrix::empty(3);
        assert!(m.is_independent(&[1, 0, 0]));
        m.push_row(vec![1, 0, 0]);
        assert!(!m.is_independent(&[2, 0, 0]));
        assert!(m.is_independent(&[1, 1, 0]));
    }

    #[test]
    fn to_int_rows_clears_denominators() {
        let m = RatMatrix::from_rows(vec![vec![Ratio::new(1, 2), Ratio::new(1, 3)]]);
        let im = m.to_int_rows();
        assert_eq!(im.row(0), &[3, 2]);
    }

    #[test]
    fn transpose_mul() {
        let a = IntMatrix::from_rows(vec![vec![1, 2], vec![3, 4]]);
        let b = a.transpose();
        assert_eq!(b.row(0), &[1, 3]);
        let p = a.mul(&b);
        assert_eq!(p.row(0), &[5, 11]);
        assert_eq!(p.row(1), &[11, 25]);
    }
}
