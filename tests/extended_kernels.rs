//! Integration tests for the extended kernel suite (the Pluto tool's
//! example set beyond the paper's five evaluation kernels): the full
//! pipeline must transform each legally and preserve semantics bitwise.

use pluto::baselines::validate_legality;
use pluto::{find_transformation, Optimizer, PlutoOptions};
use pluto_codegen::{generate, original_schedule};
use pluto_frontend::kernels::{self, Kernel};
#[allow(unused_imports)]
use pluto_ir::Program;
use pluto_machine::{run_sequential, Arrays};

fn params_for(name: &str) -> Vec<i64> {
    match name {
        "jacobi-2d-imper" => vec![5, 12],
        "gemver" => vec![17],
        "trmm" => vec![14],
        "syrk" => vec![11],
        "trisolv" => vec![16],
        "doitgen" => vec![7],
        other => panic!("unexpected kernel {other}"),
    }
}

fn extended() -> Vec<(&'static str, Kernel)> {
    kernels::all()
        .into_iter()
        .filter(|(n, _)| {
            matches!(
                *n,
                "jacobi-2d-imper" | "gemver" | "trmm" | "syrk" | "trisolv" | "doitgen"
            )
        })
        .collect()
}

#[test]
fn extended_kernels_transform_legally() {
    for (name, k) in extended() {
        let deps = pluto_ir::analyze_dependences(&k.program, true);
        let res = find_transformation(&k.program, &deps, &PlutoOptions::default())
            .unwrap_or_else(|e| panic!("{name}: search failed: {e}"));
        let v = validate_legality(&k.program, &deps, &res.transform);
        assert!(
            v.is_empty(),
            "{name}: illegal transform: {v:?}\n{}",
            res.transform.display(&k.program)
        );
    }
}

#[test]
fn extended_kernels_execute_equivalently() {
    for (name, k) in extended() {
        let params = params_for(name);
        let mut reference = Arrays::new((k.extents)(&params));
        reference.seed_with(kernels::seed_value);
        let orig = generate(&k.program, &original_schedule(&k.program));
        run_sequential(&k.program, &orig, &params, &mut reference);

        let o = Optimizer::new()
            .tile_size(4)
            .optimize(&k.program)
            .unwrap_or_else(|e| panic!("{name}: optimize failed: {e}"));
        let ast = generate(&k.program, &o.result.transform);
        let mut arrays = Arrays::new((k.extents)(&params));
        arrays.seed_with(kernels::seed_value);
        run_sequential(&k.program, &ast, &params, &mut arrays);
        assert!(
            arrays.bitwise_eq(&reference),
            "{name}: transformed execution diverges\n{}",
            o.result.transform.display(&k.program)
        );
    }
}

#[test]
fn jacobi_2d_gets_full_time_tiling() {
    // The 2-d analogue of the paper's flagship result: one permutable
    // band covering time and both space dimensions.
    let k = kernels::jacobi_2d_imperfect();
    let deps = pluto_ir::analyze_dependences(&k.program, true);
    let res = find_transformation(&k.program, &deps, &PlutoOptions::default()).unwrap();
    let max_band = res.transform.bands.iter().map(|b| b.width).max().unwrap();
    assert!(
        max_band >= 3,
        "expected a 3-wide permutable band, got {:?}\n{}",
        res.transform.bands,
        res.transform.display(&k.program)
    );
}

#[test]
fn trmm_triangular_band_tiles() {
    let k = kernels::trmm();
    let params = params_for("trmm");
    let mut reference = Arrays::new((k.extents)(&params));
    reference.seed_with(kernels::seed_value);
    let orig = generate(&k.program, &original_schedule(&k.program));
    run_sequential(&k.program, &orig, &params, &mut reference);
    // Two-level tiling on a triangular space.
    let o = Optimizer::new()
        .tile_size(3)
        .second_level(2)
        .optimize(&k.program)
        .unwrap();
    let ast = generate(&k.program, &o.result.transform);
    let mut arrays = Arrays::new((k.extents)(&params));
    arrays.seed_with(kernels::seed_value);
    run_sequential(&k.program, &ast, &params, &mut arrays);
    assert!(arrays.bitwise_eq(&reference));
}

#[test]
fn syrk_two_parallel_space_loops() {
    let k = kernels::syrk();
    let deps = pluto_ir::analyze_dependences(&k.program, true);
    let res = find_transformation(&k.program, &deps, &PlutoOptions::default()).unwrap();
    let t = &res.transform;
    // Like matmul: i, j parallel, the k reduction sequential.
    let pars = t
        .rows
        .iter()
        .filter(|r| r.par == pluto::Parallelism::Parallel)
        .count();
    assert_eq!(pars, 2, "{}", t.display(&k.program));
}

#[test]
fn trisolv_is_mostly_sequential() {
    // A triangular solve has a serial dependence chain on x: no
    // synchronization-free loop should be found at the outermost level.
    let k = kernels::trisolv();
    let deps = pluto_ir::analyze_dependences(&k.program, true);
    let res = find_transformation(&k.program, &deps, &PlutoOptions::default()).unwrap();
    let t = &res.transform;
    let first_loop = (0..t.num_rows())
        .find(|&r| t.rows[r].kind == pluto::RowKind::Loop)
        .unwrap();
    assert_eq!(
        t.rows[first_loop].par,
        pluto::Parallelism::Sequential,
        "{}",
        t.display(&k.program)
    );
}

#[test]
fn gemver_per_group_parallelism() {
    // No single global row of gemver is parallel for all four statements
    // (S4's reduction serializes the fused outer loop, S2's its inner
    // one), but per-group parallelism still finds a parallel loop for the
    // three statements whose group permits one. S2 keeps none — the cost
    // function traded it for distance-0 reuse on `A` with S1, the same
    // fusion-over-parallelism choice the paper demonstrates on MVT.
    let k = kernels::gemver();
    let deps = pluto_ir::analyze_dependences(&k.program, true);
    let res = find_transformation(&k.program, &deps, &PlutoOptions::default()).unwrap();
    let t = &res.transform;
    let has_parallel = |s: usize| {
        (0..t.num_rows()).any(|r| {
            t.rows[r].kind == pluto::RowKind::Loop
                && t.par_for(s, r) == pluto::Parallelism::Parallel
        })
    };
    for s in [0usize, 2, 3] {
        assert!(
            has_parallel(s),
            "S{} has no parallel loop:\n{}",
            s + 1,
            t.display(&k.program)
        );
    }
    // And no row is globally parallel (the old all-statement marking
    // would have produced a fully sequential program here).
    assert!(t.rows.iter().all(|r| r.par != pluto::Parallelism::Parallel));
}

#[test]
fn parser_and_builder_agree_on_matmul() {
    // The same kernel written in affine C and through the builder must
    // produce identical dependence structure and identical results.
    let src = "
      params N;
      array C[N][N]; array A[N][N]; array B[N][N];
      for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
          for (k = 0; k < N; k++)
            C[i][j] += A[i][k] * B[k][j];
    ";
    let parsed = pluto_frontend::parse(src).unwrap();
    let built = kernels::matmul().program;
    let dp = pluto_ir::analyze_dependences(&parsed, true);
    let db = pluto_ir::analyze_dependences(&built, true);
    assert_eq!(dp.len(), db.len(), "same dependence count");

    // Execute both (identity schedules) and compare element-wise.
    let n = 9usize;
    let mk = |prog: &pluto_ir::Program| {
        let ast = generate(prog, &original_schedule(prog));
        let mut arrays = Arrays::new(vec![vec![n, n]; 3]);
        arrays.seed_with(kernels::seed_value);
        run_sequential(prog, &ast, &[n as i64], &mut arrays);
        arrays
    };
    assert!(mk(&parsed).bitwise_eq(&mk(&built)));
}
