//! Differential fuzzing of the whole optimizer: random affine kernels are
//! pushed through dependence analysis → hyperplane search → tiling →
//! wavefront → codegen, then executed (sequentially, tiled, and with the
//! wavefront thread team) and compared bit-exactly against the original
//! program order. The fully-optimized AST runs through all four
//! execution engines — tree-walk sequential, compiled bytecode
//! sequential, legacy scoped-thread parallel, and the persistent-pool
//! compiled parallel engine — so every fuzz kernel is also a
//! differential proof of the pool + kernel-compiler rework. Every
//! emitted untiled transformation additionally passes the independent
//! `validate_legality` audit.
//!
//! The run is hermetic and reproducible: a fixed default seed, with
//! `TESTKIT_SEED=<n>` / `TESTKIT_CASES=<n>` overrides. A failure panics
//! with the exact case seed and a greedily shrunk minimal kernel spec.

use testkit::prop::{check, Config};
use testkit::{gen_spec, shrink_spec, GenConfig, OracleConfig};

/// 200 random kernels, each checked by the full differential oracle.
///
/// This is the PR's acceptance gate for the transformation stack: it has
/// caught real miscompiles (a `split_on_point` complement-bound off-by-one,
/// over-constrained supernode domains for rank-deficient statements) and
/// search non-termination (futile SCC cuts looping to the row limit).
#[test]
fn fuzz_200_kernels_bit_exact() {
    let gcfg = GenConfig::default();
    let ocfg = OracleConfig::default();
    check(
        &Config {
            cases: 200,
            seed: 0x00D1FF,
            max_shrink_steps: 40,
        }
        .from_env(),
        "fuzz_200_kernels_bit_exact",
        |rng| gen_spec(rng, &gcfg),
        shrink_spec,
        |spec| testkit::check_spec(spec, &ocfg),
    );
}
