//! The tentpole's proof of isolation: N ≥ 8 threads compiling different
//! kernels *simultaneously* must each produce the same `pluto-profile/3`
//! and `pluto-explain/1` documents as their serial runs.
//!
//! Every compile installs its own `ObsSession`, so its counters, spans,
//! decision log, and emptiness-cache store are private by construction —
//! a concurrent neighbour can neither inflate a counter nor interleave a
//! decision event. The explain document (schedule rows, satisfaction
//! ledger, decision events) must be **bit-identical** across runs; the
//! profile document is compared after zeroing wall-clock fields
//! (`total_ns`, per-phase `wall_ns`, histogram `sum_ns`/bucket
//! positions), since time itself is the one thing a loaded machine is
//! allowed to change — the *counts* (phase calls, all 24 counters,
//! histogram sample totals) must match exactly.

use pluto::Optimizer;
use pluto_frontend::kernels;
use pluto_ir::Program;
use pluto_repro::pluto_schedule;
use std::sync::Barrier;

/// One full library compile of `prog` under a private session, returning
/// the (normalized profile, explain) document pair.
fn compile(name: &str, prog: &Program) -> (String, String) {
    // Serial dependence analysis (the `Optimizer` default) keeps the
    // session's cache hit/miss counters deterministic: with a worker
    // team, two workers can race to the same canonical key and both
    // miss, which is correct but scheduling-dependent.
    let obs = pluto_obs::ObsSession::builder()
        .profile()
        .decisions()
        .build();
    let deps = {
        let _g = obs.install();
        pluto_ir::analyze_dependences(prog, true)
    };
    let out = pluto_schedule(prog, deps, &Optimizer::new().tile_size(8))
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e:?}"));
    (
        normalize_profile(&out.profile.to_json(Some(name))),
        out.explain,
    )
}

/// Zeroes the digits following `"key": ` everywhere in `line`.
fn zero_field(line: &str, key: &str) -> String {
    let needle = format!("\"{key}\": ");
    let mut out = String::new();
    let mut rest = line;
    while let Some(i) = rest.find(&needle) {
        let after = i + needle.len();
        out.push_str(&rest[..after]);
        out.push('0');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Strips the timing content from a `pluto-profile/3` document, keeping
/// every deterministic field: phase paths and call counts, counter
/// values, histogram names and sample counts.
fn normalize_profile(doc: &str) -> String {
    doc.lines()
        .map(|line| {
            let mut l = zero_field(line, "total_ns");
            l = zero_field(&l, "wall_ns");
            l = zero_field(&l, "sum_ns");
            // A histogram sample's bucket is its latency's log2 — a
            // loaded machine legitimately shifts samples between
            // buckets, so only the total (the `count` field) is pinned.
            if let (Some(i), Some(j)) = (l.find("\"buckets\": ["), l.rfind(']')) {
                l = format!("{}{}", &l[..i + "\"buckets\": [".len()], &l[j..]);
            }
            l
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// ISSUE 9 acceptance: per-compile profile/explain JSON from N ≥ 8
/// simultaneous compiles is identical to serial runs.
#[test]
fn concurrent_compiles_match_serial_documents() {
    let all = kernels::all();
    assert!(all.len() >= 8, "stress test wants at least 8 kernels");

    // Serial reference pass: one compile at a time.
    let serial: Vec<(String, String)> = all
        .iter()
        .map(|(name, k)| compile(name, &k.program))
        .collect();

    // Concurrent pass: every kernel on its own thread, released together.
    let barrier = Barrier::new(all.len());
    let concurrent: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = all
            .iter()
            .map(|(name, k)| {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    compile(name, &k.program)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (((name, _), serial), concurrent) in all.iter().zip(&serial).zip(&concurrent) {
        assert_eq!(
            serial.1, concurrent.1,
            "{name}: explain document diverges between serial and concurrent compiles"
        );
        assert_eq!(
            serial.0, concurrent.0,
            "{name}: profile document (timing-normalized) diverges between serial \
             and concurrent compiles"
        );
    }

    // And the documents are self-consistent: valid JSON, stable schemas.
    for ((name, _), (profile, explain)) in all.iter().zip(&serial) {
        let p = pluto_obs::json::parse(profile)
            .unwrap_or_else(|e| panic!("{name}: profile JSON invalid: {e}"));
        assert_eq!(
            p.get("schema").unwrap().as_str(),
            Some("pluto-profile/3"),
            "{name}: profile schema drifted"
        );
        let e = pluto_obs::json::parse(explain)
            .unwrap_or_else(|e| panic!("{name}: explain JSON invalid: {e}"));
        assert_eq!(
            e.get("schema").unwrap().as_str(),
            Some("pluto-explain/1"),
            "{name}: explain schema drifted"
        );
    }
}
