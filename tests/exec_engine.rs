//! Golden battery for the pooled compiled execution engine: the paper's
//! Fig. 13 benchmark kernels (jacobi-1d-imper, seidel-2d, mvt, lu) run
//! through tile + wavefront and execute bit-exactly on the persistent
//! pool at every team width, the global pool never spawns after warm-up,
//! trace timelines use only stable slot tids, and jacobi-1d's dynamic
//! chunking holds the load-imbalance acceptance bound.
//!
//! Tracing is session-scoped (each test that wants a trace installs its
//! own `ObsSession`), so the tests run fully parallel; the one
//! process-global resource left is the pool's spawn counter, which the
//! spawn-free test neutralizes by pre-warming the pool to the widest
//! team any test in this binary uses.

use pluto::Optimizer;
use pluto_codegen::{generate, original_schedule};
use pluto_frontend::kernels::{self, Kernel};
use pluto_machine::{
    compile_kernel, pool, run_compiled_parallel, run_parallel, run_parallel_profiled,
    run_sequential, Arrays, ParallelConfig,
};

/// The widest team any test in this binary dispatches.
const MAX_TEAM: usize = 7;

/// The Fig. 13 kernels the bench harness samples, with parameters small
/// enough for a debug-build golden but large enough that wavefront
/// fronts exceed the solo-execution threshold.
fn fig13() -> Vec<(Kernel, Vec<i64>)> {
    vec![
        (kernels::jacobi_1d_imperfect(), vec![12, 160]), // T, N
        (kernels::seidel_2d(), vec![6, 36]),             // T, N
        (kernels::mvt(), vec![48]),                      // N
        (kernels::lu(), vec![28]),                       // N
    ]
}

fn reference(k: &Kernel, params: &[i64]) -> Arrays {
    let ast = generate(&k.program, &original_schedule(&k.program));
    let mut arrays = Arrays::new((k.extents)(params));
    arrays.seed_with(kernels::seed_value);
    run_sequential(&k.program, &ast, params, &mut arrays);
    arrays
}

/// Golden: each Fig. 13 kernel, tiled and wavefronted, matches the
/// original program order bit-exactly at 1, 2, 4, and 7 threads on the
/// pooled compiled engine — and a 1-thread configuration never enters
/// the dispatch path at all.
#[test]
fn fig13_goldens_across_team_widths() {
    let opt = Optimizer::new().tile_size(8);
    for (k, params) in fig13() {
        let name = k.program.name.clone();
        let expect = reference(&k, &params);
        let optimized = opt.optimize(&k.program).expect("optimize");
        let ast = generate(&k.program, &optimized.result.transform);
        for threads in [1usize, 2, 4, 7] {
            let mut arrays = Arrays::new((k.extents)(&params));
            arrays.seed_with(kernels::seed_value);
            let stats = run_parallel(
                &k.program,
                &ast,
                &params,
                &mut arrays,
                ParallelConfig {
                    threads,
                    collapse: 1,
                },
            );
            assert!(
                arrays.bitwise_eq(&expect),
                "{name} diverges at {threads} threads"
            );
            assert!(stats.instances > 0, "{name}: nothing executed");
            if threads == 1 {
                assert_eq!(
                    stats.parallel_regions, 0,
                    "{name}: 1-thread run must not dispatch"
                );
            } else {
                assert!(
                    stats.parallel_regions > 0,
                    "{name}: wavefront produced no parallel loops"
                );
            }
        }
    }
}

/// One compilation, many executions: reusing a `CompiledKernel` across
/// repeated parallel runs (the bench sampling pattern) is deterministic
/// and spawns no threads after the pool is warm.
#[test]
fn compiled_kernel_reuse_is_stable_and_spawn_free() {
    // The spawn counter is process-global; growing the pool to the
    // widest team used anywhere in this binary first means no
    // concurrently running test can spawn behind our back.
    pool::global().ensure_width(MAX_TEAM);
    let k = kernels::seidel_2d();
    let params = [6i64, 36];
    let expect = reference(&k, &params);
    let optimized = Optimizer::new().tile_size(8).optimize(&k.program).unwrap();
    let ast = generate(&k.program, &optimized.result.transform);
    let cfg = ParallelConfig {
        threads: 4,
        collapse: 1,
    };
    let proto = Arrays::new((k.extents)(&params));
    let ck = compile_kernel(&k.program, &ast, &params, &proto);
    // Warm the global pool, then pin the process spawn count.
    let mut warm = Arrays::new((k.extents)(&params));
    warm.seed_with(kernels::seed_value);
    run_compiled_parallel(&ck, &mut warm, cfg);
    assert!(warm.bitwise_eq(&expect));
    let spawned = pool::global().spawned();
    for round in 0..10 {
        let mut arrays = Arrays::new((k.extents)(&params));
        arrays.seed_with(kernels::seed_value);
        run_compiled_parallel(&ck, &mut arrays, cfg);
        assert!(arrays.bitwise_eq(&expect), "round {round} diverged");
    }
    assert_eq!(
        pool::global().spawned(),
        spawned,
        "steady-state dispatches must not spawn threads"
    );
}

/// Trace timelines from the pooled engine use only the stable slot tids
/// `0..=width`: coordinator 0 plus enlisted pool workers — never a
/// per-dispatch spawn id.
#[test]
fn trace_tids_are_stable_pool_slots() {
    let k = kernels::seidel_2d();
    let params = [6i64, 36];
    let optimized = Optimizer::new().tile_size(8).optimize(&k.program).unwrap();
    let ast = generate(&k.program, &optimized.result.transform);
    let mut arrays = Arrays::new((k.extents)(&params));
    arrays.seed_with(kernels::seed_value);
    let obs = pluto_obs::ObsSession::builder().trace().build();
    {
        let _g = obs.install();
        run_parallel(
            &k.program,
            &ast,
            &params,
            &mut arrays,
            ParallelConfig {
                threads: 4,
                collapse: 1,
            },
        );
    }
    let trace = obs.take_trace();
    let tids: std::collections::BTreeSet<u32> = trace.events.iter().map(|e| e.tid).collect();
    assert!(!tids.is_empty(), "traced run produced no span events");
    assert!(
        tids.iter().all(|&t| t <= 3),
        "tids {tids:?} escape the slot range 0..=3"
    );
    assert!(tids.contains(&0), "coordinator timeline missing");
}

/// Acceptance: dynamic chunking keeps jacobi-1d's worst dispatch
/// imbalance at or under 1.25 (the scoped engine's block schedule
/// measured 1.87 on this kernel), without costing correctness.
#[test]
fn jacobi_imbalance_bounded() {
    let k = kernels::jacobi_1d_imperfect();
    let params = [16i64, 1200];
    let expect = reference(&k, &params);
    let optimized = Optimizer::new().tile_size(8).optimize(&k.program).unwrap();
    let ast = generate(&k.program, &optimized.result.transform);
    let mut arrays = Arrays::new((k.extents)(&params));
    arrays.seed_with(kernels::seed_value);
    let (stats, profile) = run_parallel_profiled(
        &k.program,
        &ast,
        &params,
        &mut arrays,
        ParallelConfig {
            threads: 4,
            collapse: 1,
        },
    );
    assert!(arrays.bitwise_eq(&expect), "profiled run diverged");
    // Empty parallel regions (outer lb > ub) count as regions but are
    // never dispatched, on either engine.
    assert!(profile.dispatches <= stats.parallel_regions);
    assert!(profile.dispatches > 0);
    assert!(
        profile.imbalance_max <= 1.25,
        "jacobi-1d imbalance_max {} exceeds the 1.25 acceptance bound",
        profile.imbalance_max
    );
    assert!(profile.imbalance_mean <= profile.imbalance_max);
}
