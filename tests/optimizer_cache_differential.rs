//! Cached-vs-uncached compile differential over the full example-kernel
//! suite.
//!
//! Every compile-time shortcut introduced by the optimizer speed pass —
//! the canonicalized emptiness cache, simplex warm-starting across a
//! band's rows, dependence-candidate pruning, and parallel pair analysis
//! (DESIGN.md §11) — is claimed to be *output-invariant*: it may only
//! skip work whose answer is already determined, never change an answer.
//! This test makes that claim mechanically checkable on all shipped
//! kernels: each one is compiled twice, once with every shortcut enabled
//! and once with every shortcut disabled, and the two compiles must
//! agree bit-for-bit on
//!
//! * the dependence set (edges and polyhedra),
//! * the transformation (schedule rows, bands, parallel marks),
//! * the satisfaction ledger and the `pluto-explain/1` document built
//!   from it, and
//! * the generated OpenMP C.
//!
//! The random-kernel analogue lives in the fuzz oracle
//! (`testkit::check_kernel`), which adds compiled-bytecode equality; this
//! test pins the same property on the named kernels the benchmarks and
//! docs talk about.

use pluto::{explain_json, find_transformation, Optimizer, PlutoOptions};
use pluto_codegen::{emit_c, generate};
use pluto_frontend::kernels;
use pluto_ir::{analyze_dependences_with, DepAnalysisOptions, Program};

/// One full compile at tile size 8 (the plutoc default), returning every
/// artifact the differential compares: dependence fingerprint, explain
/// document (transformation + ledger + decision events), and C output.
fn compile(name: &str, prog: &Program, shortcuts: bool) -> (String, String, String) {
    // Each compile runs under its own session: its decision log and its
    // emptiness-cache store (and the cache on/off toggle) are private to
    // this call, so cached and uncached compiles can't contaminate each
    // other — or any test running concurrently.
    let obs = pluto_obs::ObsSession::builder().decisions().build();
    let guard = obs.install();
    pluto_poly::cache::set_enabled(shortcuts);
    let deps = analyze_dependences_with(
        prog,
        &DepAnalysisOptions {
            include_input: true,
            prune: shortcuts,
            threads: 1,
        },
    );
    let searched = find_transformation(
        prog,
        &deps,
        &PlutoOptions {
            warm_start: shortcuts,
            ..PlutoOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: search failed (shortcuts={shortcuts}): {e:?}"));
    let full = Optimizer::new()
        .tile_size(8)
        .apply(prog, deps.clone(), searched);
    drop(guard);
    let log = obs.take_decisions();

    let dep_fingerprint = deps
        .iter()
        .map(|d| {
            format!(
                "{}->{} {:?} level {}  {:?}\n",
                d.src, d.dst, d.kind, d.level, d.poly
            )
        })
        .collect::<String>();
    let doc = explain_json(prog, &deps, &full.result, &log, Some(name));
    let ast = generate(prog, &full.result.transform);
    (dep_fingerprint, doc, emit_c(prog, &ast))
}

#[test]
fn shortcuts_are_output_invariant_on_all_example_kernels() {
    for (name, k) in kernels::all() {
        let (deps_on, doc_on, c_on) = compile(name, &k.program, true);
        let (deps_off, doc_off, c_off) = compile(name, &k.program, false);
        assert_eq!(
            deps_on, deps_off,
            "{name}: dependence sets diverge between cached and uncached compiles"
        );
        assert_eq!(
            doc_on, doc_off,
            "{name}: explain documents (schedule/ledger/events) diverge between \
             cached and uncached compiles"
        );
        assert_eq!(
            c_on, c_off,
            "{name}: generated C diverges between cached and uncached compiles"
        );
    }
}
