//! End-to-end property tests: random affine stencil programs run through
//! the whole pipeline (dependences → search → tiling → wavefront →
//! codegen → execution) must (a) produce exactly legal transformations
//! and (b) compute bitwise-identical results to the original program.
//!
//! Runs on the hermetic `testkit` harness: every failure message carries
//! the case seed, and `TESTKIT_SEED=<n> TESTKIT_CASES=1` replays it.

use pluto::baselines::validate_legality;
use pluto::{find_transformation, Optimizer, PlutoOptions};
use pluto_codegen::{generate, original_schedule};
use pluto_ir::{analyze_dependences, Expr, Program, ProgramBuilder, StatementSpec};
use pluto_machine::{run_sequential, Arrays};
use testkit::prop::{check, shrink_i64, Config};
use testkit::Rng;

/// A randomly generated 2-statement stencil program over one array:
///
/// ```c
/// for t in 0..T {
///   for i in 2..N-2: b[i] = f(a[i+o1], a[i+o2]);   // S1
///   for j in 2..N-2: a[j] = g(b[j+o3]);            // S2
/// }
/// ```
///
/// with offsets `o ∈ {-2..2}` — a family that includes the paper's
/// Jacobi as one member and exercises shifts, skews and fusion alignment.
#[derive(Debug, Clone)]
struct StencilSpec {
    o1: i64,
    o2: i64,
    o3: i64,
    scale: bool,
}

fn gen_stencil(rng: &mut Rng) -> StencilSpec {
    StencilSpec {
        o1: rng.range_i64(-2, 2),
        o2: rng.range_i64(-2, 2),
        o3: rng.range_i64(-2, 2),
        scale: rng.bool(),
    }
}

/// Shrinks each offset toward zero and drops the scale flag.
fn shrink_stencil(sp: &StencilSpec) -> Vec<StencilSpec> {
    let mut out = Vec::new();
    for o in shrink_i64(sp.o1) {
        out.push(StencilSpec {
            o1: o,
            ..sp.clone()
        });
    }
    for o in shrink_i64(sp.o2) {
        out.push(StencilSpec {
            o2: o,
            ..sp.clone()
        });
    }
    for o in shrink_i64(sp.o3) {
        out.push(StencilSpec {
            o3: o,
            ..sp.clone()
        });
    }
    if sp.scale {
        out.push(StencilSpec {
            scale: false,
            ..sp.clone()
        });
    }
    out
}

fn build(spec: &StencilSpec) -> Program {
    let mut b = ProgramBuilder::new("randstencil", &["T", "N"]);
    b.add_context_ineq(vec![1, 0, -1]); // T >= 1
    b.add_context_ineq(vec![0, 1, -7]); // N >= 7
    b.add_array("a", 1);
    b.add_array("b", 1);
    // Columns: [t, i, T, N, 1].
    let dom = vec![
        vec![1, 0, 0, 0, 0],
        vec![-1, 0, 1, 0, -1],
        vec![0, 1, 0, 0, -2],
        vec![0, -1, 0, 1, -3],
    ];
    let body1 = if spec.scale {
        Expr::Lit(0.4) * (Expr::Read(0) + Expr::Read(1))
    } else {
        Expr::Read(0) - Expr::Lit(0.25) * Expr::Read(1)
    };
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["t".into(), "i".into()],
        domain_ineqs: dom.clone(),
        beta: vec![0, 0, 0],
        write: ("b".into(), vec![vec![0, 1, 0, 0, 0]]),
        reads: vec![
            ("a".into(), vec![vec![0, 1, 0, 0, spec.o1 as i128]]),
            ("a".into(), vec![vec![0, 1, 0, 0, spec.o2 as i128]]),
        ],
        body: body1,
    });
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["t".into(), "j".into()],
        domain_ineqs: dom,
        beta: vec![0, 1, 0],
        write: ("a".into(), vec![vec![0, 1, 0, 0, 0]]),
        reads: vec![("b".into(), vec![vec![0, 1, 0, 0, spec.o3 as i128]])],
        body: Expr::Lit(0.9) * Expr::Read(0),
    });
    b.build()
}

fn run(prog: &Program, t: &pluto::Transformation, params: &[i64]) -> Arrays {
    let ast = generate(prog, t);
    let n = params[1] as usize;
    let mut arrays = Arrays::new(vec![vec![n], vec![n]]);
    arrays.seed_with(pluto_frontend::kernels::seed_value);
    run_sequential(prog, &ast, params, &mut arrays);
    arrays
}

/// The search always yields an exactly legal transformation.
#[test]
fn search_is_always_legal() {
    check(
        &Config::with_cases(24).from_env(),
        "search_is_always_legal",
        gen_stencil,
        shrink_stencil,
        |sp| {
            let prog = build(sp);
            let deps = analyze_dependences(&prog, true);
            let res = find_transformation(&prog, &deps, &PlutoOptions::default())
                .map_err(|e| format!("stencil family must be transformable: {e}"))?;
            let violations = validate_legality(&prog, &deps, &res.transform);
            if violations.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "illegal transform for {sp:?}: {violations:?}\n{}",
                    res.transform.display(&prog)
                ))
            }
        },
    );
}

/// Untransformed and fully optimized executions agree bitwise.
#[test]
fn optimized_execution_matches() {
    check(
        &Config::with_cases(24).from_env(),
        "optimized_execution_matches",
        gen_stencil,
        shrink_stencil,
        |sp| {
            let prog = build(sp);
            let params = [5i64, 19];
            let reference = run(&prog, &original_schedule(&prog), &params);
            let o = Optimizer::new()
                .tile_size(4)
                .optimize(&prog)
                .map_err(|e| format!("must optimize: {e}"))?;
            let got = run(&prog, &o.result.transform, &params);
            if got.bitwise_eq(&reference) {
                Ok(())
            } else {
                Err(format!("divergence for {sp:?}"))
            }
        },
    );
}

/// Tiling with any size in 2..=8 preserves semantics.
#[test]
fn any_tile_size_preserves_semantics() {
    check(
        &Config::with_cases(24).from_env(),
        "any_tile_size_preserves_semantics",
        |rng| (gen_stencil(rng), rng.range_i64(2, 8)),
        |(sp, tile)| {
            let mut out: Vec<(StencilSpec, i64)> =
                shrink_stencil(sp).into_iter().map(|s| (s, *tile)).collect();
            if *tile > 2 {
                out.push((sp.clone(), tile - 1));
            }
            out
        },
        |(sp, tile)| {
            let prog = build(sp);
            let params = [4i64, 15];
            let reference = run(&prog, &original_schedule(&prog), &params);
            let o = Optimizer::new()
                .tile_size(*tile as i128)
                .parallel(false)
                .vectorization(false)
                .optimize(&prog)
                .map_err(|e| format!("must optimize: {e}"))?;
            let got = run(&prog, &o.result.transform, &params);
            if got.bitwise_eq(&reference) {
                Ok(())
            } else {
                Err(format!("tile {tile} diverges for {sp:?}"))
            }
        },
    );
}

/// The Feautrier scheduler also produces exactly legal transformations
/// on the random stencil family, and its executions match the
/// original bitwise.
#[test]
fn feautrier_schedule_is_legal_and_equivalent() {
    check(
        &Config::with_cases(12).from_env(),
        "feautrier_schedule_is_legal_and_equivalent",
        gen_stencil,
        shrink_stencil,
        |sp| {
            let prog = build(sp);
            let deps = analyze_dependences(&prog, false);
            let res = pluto::feautrier_schedule(&prog, &deps)
                .map_err(|e| format!("stencils always have schedules: {e}"))?;
            let violations = validate_legality(&prog, &deps, &res.transform);
            if !violations.is_empty() {
                return Err(format!(
                    "illegal schedule for {sp:?}: {violations:?}\n{}",
                    res.transform.display(&prog)
                ));
            }
            let params = [4i64, 15];
            let reference = run(&prog, &original_schedule(&prog), &params);
            let got = run(&prog, &res.transform, &params);
            if got.bitwise_eq(&reference) {
                Ok(())
            } else {
                Err(format!("divergence for {sp:?}"))
            }
        },
    );
}
