//! End-to-end property tests: random affine stencil programs run through
//! the whole pipeline (dependences → search → tiling → wavefront →
//! codegen → execution) must (a) produce exactly legal transformations
//! and (b) compute bitwise-identical results to the original program.

use proptest::prelude::*;
use pluto::baselines::validate_legality;
use pluto::{find_transformation, Optimizer, PlutoOptions};
use pluto_codegen::{generate, original_schedule};
use pluto_ir::{analyze_dependences, Expr, Program, ProgramBuilder, StatementSpec};
use pluto_machine::{run_sequential, Arrays};

/// A randomly generated 2-statement stencil program over one array:
///
/// ```c
/// for t in 0..T {
///   for i in 2..N-2: b[i] = f(a[i+o1], a[i+o2]);   // S1
///   for j in 2..N-2: a[j] = g(b[j+o3]);            // S2
/// }
/// ```
///
/// with offsets `o ∈ {-2..2}` — a family that includes the paper's
/// Jacobi as one member and exercises shifts, skews and fusion alignment.
#[derive(Debug, Clone)]
struct StencilSpec {
    o1: i64,
    o2: i64,
    o3: i64,
    scale: bool,
}

fn spec() -> impl Strategy<Value = StencilSpec> {
    (-2i64..=2, -2i64..=2, -2i64..=2, proptest::bool::ANY).prop_map(|(o1, o2, o3, scale)| {
        StencilSpec { o1, o2, o3, scale }
    })
}

fn build(spec: &StencilSpec) -> Program {
    let mut b = ProgramBuilder::new("randstencil", &["T", "N"]);
    b.add_context_ineq(vec![1, 0, -1]); // T >= 1
    b.add_context_ineq(vec![0, 1, -7]); // N >= 7
    b.add_array("a", 1);
    b.add_array("b", 1);
    // Columns: [t, i, T, N, 1].
    let dom = vec![
        vec![1, 0, 0, 0, 0],
        vec![-1, 0, 1, 0, -1],
        vec![0, 1, 0, 0, -2],
        vec![0, -1, 0, 1, -3],
    ];
    let body1 = if spec.scale {
        Expr::Lit(0.4) * (Expr::Read(0) + Expr::Read(1))
    } else {
        Expr::Read(0) - Expr::Lit(0.25) * Expr::Read(1)
    };
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["t".into(), "i".into()],
        domain_ineqs: dom.clone(),
        beta: vec![0, 0, 0],
        write: ("b".into(), vec![vec![0, 1, 0, 0, 0]]),
        reads: vec![
            ("a".into(), vec![vec![0, 1, 0, 0, spec.o1 as i128]]),
            ("a".into(), vec![vec![0, 1, 0, 0, spec.o2 as i128]]),
        ],
        body: body1,
    });
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["t".into(), "j".into()],
        domain_ineqs: dom,
        beta: vec![0, 1, 0],
        write: ("a".into(), vec![vec![0, 1, 0, 0, 0]]),
        reads: vec![("b".into(), vec![vec![0, 1, 0, 0, spec.o3 as i128]])],
        body: Expr::Lit(0.9) * Expr::Read(0),
    });
    b.build()
}

fn run(prog: &Program, t: &pluto::Transformation, params: &[i64]) -> Arrays {
    let ast = generate(prog, t);
    let n = params[1] as usize;
    let mut arrays = Arrays::new(vec![vec![n], vec![n]]);
    arrays.seed_with(pluto_frontend::kernels::seed_value);
    run_sequential(prog, &ast, params, &mut arrays);
    arrays
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The search always yields an exactly legal transformation.
    #[test]
    fn search_is_always_legal(sp in spec()) {
        let prog = build(&sp);
        let deps = analyze_dependences(&prog, true);
        let res = find_transformation(&prog, &deps, &PlutoOptions::default())
            .expect("stencil family is always transformable");
        let violations = validate_legality(&prog, &deps, &res.transform);
        prop_assert!(
            violations.is_empty(),
            "illegal transform for {sp:?}: {violations:?}\n{}",
            res.transform.display(&prog)
        );
    }

    /// Untransformed and fully optimized executions agree bitwise.
    #[test]
    fn optimized_execution_matches(sp in spec()) {
        let prog = build(&sp);
        let params = [5i64, 19];
        let reference = run(&prog, &original_schedule(&prog), &params);
        let o = Optimizer::new().tile_size(4).optimize(&prog).expect("optimizes");
        let got = run(&prog, &o.result.transform, &params);
        prop_assert!(got.bitwise_eq(&reference), "divergence for {sp:?}");
    }

    /// Tiling with any size in 2..=8 preserves semantics.
    #[test]
    fn any_tile_size_preserves_semantics(sp in spec(), tile in 2i64..=8) {
        let prog = build(&sp);
        let params = [4i64, 15];
        let reference = run(&prog, &original_schedule(&prog), &params);
        let o = Optimizer::new()
            .tile_size(tile as i128)
            .parallel(false)
            .vectorization(false)
            .optimize(&prog)
            .expect("optimizes");
        let got = run(&prog, &o.result.transform, &params);
        prop_assert!(got.bitwise_eq(&reference), "tile {tile} diverges for {sp:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The Feautrier scheduler also produces exactly legal transformations
    /// on the random stencil family, and its executions match the
    /// original bitwise.
    #[test]
    fn feautrier_schedule_is_legal_and_equivalent(sp in spec()) {
        let prog = build(&sp);
        let deps = analyze_dependences(&prog, false);
        let res = pluto::feautrier_schedule(&prog, &deps)
            .expect("stencils always have schedules");
        let violations = validate_legality(&prog, &deps, &res.transform);
        prop_assert!(
            violations.is_empty(),
            "illegal schedule for {sp:?}: {violations:?}\n{}",
            res.transform.display(&prog)
        );
        let params = [4i64, 15];
        let reference = run(&prog, &original_schedule(&prog), &params);
        let got = run(&prog, &res.transform, &params);
        prop_assert!(got.bitwise_eq(&reference), "divergence for {sp:?}");
    }
}
