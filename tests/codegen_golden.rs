//! Structural "golden" checks on generated code for the paper's code
//! figures (3, 4, 9): not byte-for-byte snapshots (bound simplification
//! may evolve) but the load-bearing structure — pragmas, tile loops,
//! floord/ceild bounds, statement macros, point guards.

use pluto::Optimizer;
use pluto_codegen::{emit_c, generate, original_schedule};
use pluto_frontend::kernels;

fn generate_c(k: &kernels::Kernel, opt: &Optimizer) -> String {
    let o = opt.optimize(&k.program).expect("optimizes");
    let ast = generate(&k.program, &o.result.transform);
    emit_c(&k.program, &ast)
}

#[test]
fn fig3_jacobi_tiled_code_structure() {
    let k = kernels::jacobi_1d_imperfect();
    let c = generate_c(&k, &Optimizer::new().tile_size(256).parallel(false));
    // Statement macros as in Fig. 3's listings.
    assert!(c.contains("#define S1(t,i)"), "S1 macro");
    assert!(c.contains("#define S2(t,j)"), "S2 macro");
    assert!(c.contains("0.333"), "stencil coefficient");
    // Tile-size-256 bounds and exact division helpers.
    assert!(c.contains("256"), "tile size appears in bounds");
    assert!(c.contains("floord("), "floord bounds");
    assert!(c.contains("ceild("), "ceild bounds");
    // Both statements appear in a shared (fused) innermost region.
    assert!(c.contains("S1(") && c.contains("S2("));
}

#[test]
fn fig4_sor_wavefront_code_structure() {
    let k = kernels::sor_2d();
    let c = generate_c(&k, &Optimizer::new().tile_size(32));
    // The wavefronted tile band: sequential outer tile loop, parallel
    // inner tile loop (Fig. 4(b)).
    let pragma_pos = c.find("#pragma omp parallel for").expect("omp pragma");
    let first_for = c.find("for (int c1").expect("outer tile loop");
    assert!(
        pragma_pos > first_for,
        "the parallel pragma must be on an inner loop (pipelined wavefront)"
    );
    assert!(c.contains("S1(i,j)") || c.contains("S1("), "statement call");
}

#[test]
fn fig9_lu_point_split_structure() {
    let k = kernels::lu();
    let c = generate_c(&k, &Optimizer::new().tile_size(32));
    // The sunk statement S1 is emitted under a point region (a Let binding
    // of the scattering dim) with a hoisted activity condition — the
    // `if (c1 == c2+c3)`-style guard of Fig. 9(c).
    assert!(c.contains("S1_ok") || c.contains("== 0"), "S1 point guard");
    assert!(c.contains("#pragma omp parallel for"), "pipelined parallel");
    assert!(c.contains("S2("), "update statement");
    // The division macro header is present exactly once.
    assert_eq!(c.matches("#define floord").count(), 1);
}

/// Extracts the header of the first `for` loop over `cvar`, e.g. `"c2"`.
fn loop_header<'a>(c: &'a str, cvar: &str) -> &'a str {
    let start = c
        .find(&format!("for (int {cvar}"))
        .unwrap_or_else(|| panic!("no loop over {cvar}:\n{c}"));
    let end = c[start..].find('{').expect("loop body brace");
    &c[start..start + end]
}

#[test]
fn fig13_sor_wavefront_tile_space_code() {
    // Fig. 13: the tiled wavefront for SOR. The tile band (iT, jT) is
    // wavefronted into (iT+jT, jT): a sequential outer wavefront loop and
    // a parallel inner tile loop whose bounds depend on the wavefront.
    let k = kernels::sor_2d();
    let o = Optimizer::new()
        .tile_size(32)
        .optimize(&k.program)
        .expect("optimizes");
    let t = o.result.transform.display(&k.program).to_string();
    assert!(t.contains("iT + jT"), "wavefront row is the tile sum:\n{t}");
    let c = emit_c(&k.program, &generate(&k.program, &o.result.transform));
    // The wavefront loop itself carries no pragma…
    let c1 = loop_header(&c, "c1");
    assert!(
        !c[..c.find(c1).unwrap()].contains("#pragma omp"),
        "outer wavefront loop must be sequential:\n{c}"
    );
    // …the inner tile loop does, and its bounds are pipelined (they
    // reference the wavefront iterator) with exact division helpers.
    let pragma = c.find("#pragma omp parallel for").expect("omp pragma");
    let c2_pos = c.find("for (int c2").expect("inner tile loop");
    assert!(pragma < c2_pos, "pragma annotates the inner tile loop");
    let c2 = loop_header(&c, "c2");
    assert!(
        c2.contains("c1"),
        "inner tile bounds depend on wavefront: {c2}"
    );
    assert!(
        c2.contains("ceild(") && c2.contains("floord("),
        "Fig. 13 floord/ceild wavefront bounds: {c2}"
    );
    // Point loops scan 32-sized tiles.
    assert!(
        c.contains("32*c1") || c.contains("32*c2"),
        "tile origin bounds"
    );
}

#[test]
fn fig13_seidel_wavefront_tile_space_code() {
    // Seidel's t, t+i, t+j band tiles into a 3-d tile space whose
    // wavefront exposes a parallel tile dimension, same shape as Fig. 13.
    let k = kernels::seidel_2d();
    let o = Optimizer::new()
        .tile_size(32)
        .optimize(&k.program)
        .expect("optimizes");
    let c = emit_c(&k.program, &generate(&k.program, &o.result.transform));
    let pragma = c.find("#pragma omp parallel for").expect("omp pragma");
    assert!(
        pragma > c.find("for (int c1").expect("wavefront loop"),
        "wavefront loop stays sequential:\n{c}"
    );
    assert!(pragma < c.find("for (int c2").expect("tile loop"));
    let c2 = loop_header(&c, "c2");
    assert!(
        c2.contains("c1") && c2.contains("ceild("),
        "parallel tile loop has pipelined ceild bounds: {c2}"
    );
    // All three point loops of the tile scan the skewed statement.
    assert!(c.contains("S1(t,i,j)"), "statement macro call:\n{c}");
    // Supernode recovery binds distinct (non-shadowing) tile iterators.
    assert!(
        c.contains("int tT") && c.contains("int tT_2"),
        "deduplicated supernode names:\n{c}"
    );
}

#[test]
fn vectorize_pass_emits_ivdep() {
    let k = kernels::matmul();
    let c = generate_c(&k, &Optimizer::new().tile_size(16).vectorization(true));
    assert!(
        c.contains("#pragma ivdep"),
        "Sec. 5.4 reorder should mark the innermost parallel loop:\n{c}"
    );
}

#[test]
fn original_schedule_emits_plain_nest() {
    let k = kernels::matmul();
    let ast = generate(&k.program, &original_schedule(&k.program));
    let c = emit_c(&k.program, &ast);
    // Three nested loops, no pragmas, no tiling artifacts.
    assert!(!c.contains("#pragma"));
    assert!(!c.contains("T ="), "no tile dims");
    assert_eq!(c.matches("for (").count(), 3, "{c}");
}

#[test]
fn unrolled_code_has_pragma() {
    let k = kernels::matmul();
    let o = Optimizer::new().tile_size(16).optimize(&k.program).unwrap();
    let mut ast = generate(&k.program, &o.result.transform);
    pluto_codegen::unroll_innermost(&mut ast, 4);
    let c = emit_c(&k.program, &ast);
    assert!(c.contains("#pragma unroll(4)"), "{c}");
}
