//! Structural "golden" checks on generated code for the paper's code
//! figures (3, 4, 9): not byte-for-byte snapshots (bound simplification
//! may evolve) but the load-bearing structure — pragmas, tile loops,
//! floord/ceild bounds, statement macros, point guards.

use pluto::Optimizer;
use pluto_codegen::{emit_c, generate, original_schedule};
use pluto_frontend::kernels;

fn generate_c(k: &kernels::Kernel, opt: &Optimizer) -> String {
    let o = opt.optimize(&k.program).expect("optimizes");
    let ast = generate(&k.program, &o.result.transform);
    emit_c(&k.program, &ast)
}

#[test]
fn fig3_jacobi_tiled_code_structure() {
    let k = kernels::jacobi_1d_imperfect();
    let c = generate_c(&k, &Optimizer::new().tile_size(256).parallel(false));
    // Statement macros as in Fig. 3's listings.
    assert!(c.contains("#define S1(t,i)"), "S1 macro");
    assert!(c.contains("#define S2(t,j)"), "S2 macro");
    assert!(c.contains("0.333"), "stencil coefficient");
    // Tile-size-256 bounds and exact division helpers.
    assert!(c.contains("256"), "tile size appears in bounds");
    assert!(c.contains("floord("), "floord bounds");
    assert!(c.contains("ceild("), "ceild bounds");
    // Both statements appear in a shared (fused) innermost region.
    assert!(c.contains("S1(") && c.contains("S2("));
}

#[test]
fn fig4_sor_wavefront_code_structure() {
    let k = kernels::sor_2d();
    let c = generate_c(&k, &Optimizer::new().tile_size(32));
    // The wavefronted tile band: sequential outer tile loop, parallel
    // inner tile loop (Fig. 4(b)).
    let pragma_pos = c.find("#pragma omp parallel for").expect("omp pragma");
    let first_for = c.find("for (int c1").expect("outer tile loop");
    assert!(
        pragma_pos > first_for,
        "the parallel pragma must be on an inner loop (pipelined wavefront)"
    );
    assert!(c.contains("S1(i,j)") || c.contains("S1("), "statement call");
}

#[test]
fn fig9_lu_point_split_structure() {
    let k = kernels::lu();
    let c = generate_c(&k, &Optimizer::new().tile_size(32));
    // The sunk statement S1 is emitted under a point region (a Let binding
    // of the scattering dim) with a hoisted activity condition — the
    // `if (c1 == c2+c3)`-style guard of Fig. 9(c).
    assert!(c.contains("S1_ok") || c.contains("== 0"), "S1 point guard");
    assert!(c.contains("#pragma omp parallel for"), "pipelined parallel");
    assert!(c.contains("S2("), "update statement");
    // The division macro header is present exactly once.
    assert_eq!(c.matches("#define floord").count(), 1);
}

#[test]
fn vectorize_pass_emits_ivdep() {
    let k = kernels::matmul();
    let c = generate_c(&k, &Optimizer::new().tile_size(16).vectorization(true));
    assert!(
        c.contains("#pragma ivdep"),
        "Sec. 5.4 reorder should mark the innermost parallel loop:\n{c}"
    );
}

#[test]
fn original_schedule_emits_plain_nest() {
    let k = kernels::matmul();
    let ast = generate(&k.program, &original_schedule(&k.program));
    let c = emit_c(&k.program, &ast);
    // Three nested loops, no pragmas, no tiling artifacts.
    assert!(!c.contains("#pragma"));
    assert!(!c.contains("T ="), "no tile dims");
    assert_eq!(c.matches("for (").count(), 3, "{c}");
}

#[test]
fn unrolled_code_has_pragma() {
    let k = kernels::matmul();
    let o = Optimizer::new()
        .tile_size(16)
        .optimize(&k.program)
        .unwrap();
    let mut ast = generate(&k.program, &o.result.transform);
    pluto_codegen::unroll_innermost(&mut ast, 4);
    let c = emit_c(&k.program, &ast);
    assert!(c.contains("#pragma unroll(4)"), "{c}");
}
