//! Golden tests pinning the `pluto-profile/3` schema emitted by
//! `plutoc --profile-json` and the profile returned by
//! `compile_audited` — the machine-readable surface PERFORMANCE.md
//! documents and downstream tooling parses. A failure here means the
//! schema changed: bump the schema string and PERFORMANCE.md together,
//! never silently. Each version is a strict superset of the previous
//! (v2 added `exec`, v3 added `hists`); the v1/v2-consumer compat
//! tests pin that.

use pluto_repro::obs::{counters, hist, json};
use std::io::Write as _;
use std::process::{Command, Stdio};

/// The jacobi-like library kernel used across the CLI tests.
const SRC: &str = "
params N, T;
array a[N]; array b[N];
for (t = 0; t < T; t++) {
  for (i = 2; i <= N - 2; i++)
    b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
  for (j = 2; j <= N - 2; j++)
    a[j] = b[j];
}
";

fn plutoc(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_plutoc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn plutoc");
    // A child that rejects its flags exits before reading stdin, so a
    // broken pipe here is expected, not an error.
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("plutoc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Asserts one parsed `pluto-profile/3` document against the schema
/// contract: field names, phase paths, the exact counter registry, and
/// the latency-histogram registry.
fn assert_profile_shape(doc: &json::Json, expect_kernel: &str) {
    assert_eq!(
        doc.get("schema").expect("schema field").as_str(),
        Some("pluto-profile/3")
    );
    // Compile-only profile: the exec section is present but null.
    assert!(doc.get("exec").expect("exec field").is_null());
    assert_eq!(
        doc.get("kernel").expect("kernel field").as_str(),
        Some(expect_kernel)
    );
    assert!(
        doc.get("total_ns")
            .expect("total_ns field")
            .as_u64()
            .unwrap()
            > 0
    );

    let phases = doc.get("phases").expect("phases field").as_array().unwrap();
    let paths: Vec<&str> = phases
        .iter()
        .map(|p| p.get("path").expect("phase.path").as_str().unwrap())
        .collect();
    // The pipeline phases every compile goes through (sorted by path,
    // parents before children).
    for expected in [
        "codegen",
        "optimize",
        "optimize/deps",
        "optimize/search",
        "optimize/tiling",
        "parse",
    ] {
        assert!(
            paths.contains(&expected),
            "missing phase {expected}: {paths:?}"
        );
    }
    let mut sorted = paths.clone();
    sorted.sort_unstable();
    assert_eq!(paths, sorted, "phases must be sorted by path");
    for p in phases {
        assert!(p.get("calls").expect("phase.calls").as_u64().unwrap() >= 1);
        assert!(p.get("wall_ns").expect("phase.wall_ns").as_u64().is_some());
    }

    // Counters: the full registry, in registry order, zeros included —
    // consumers may index by position.
    let cs = doc
        .get("counters")
        .expect("counters field")
        .as_array()
        .unwrap();
    let names: Vec<&str> = cs
        .iter()
        .map(|c| c.get("name").expect("counter.name").as_str().unwrap())
        .collect();
    let registry: Vec<&str> = counters::all().iter().map(|c| c.name()).collect();
    assert_eq!(names, registry, "counter set drifted from the registry");
    for c in cs {
        assert!(c.get("value").expect("counter.value").as_u64().is_some());
    }
    // A compile cannot happen without ILP solves and dependence tests.
    let value = |n: &str| {
        cs.iter()
            .find(|c| c.get("name").unwrap().as_str() == Some(n))
            .and_then(|c| c.get("value").unwrap().as_u64())
            .unwrap()
    };
    assert!(value("ilp.solves") > 0);
    assert!(value("ilp.pivots") > 0);
    assert!(value("ir.dep_candidates") > 0);
    assert!(value("codegen.loops") > 0);

    // Histograms (new in /3): the full registry in registry order, every
    // document carrying all log2 buckets so the shape is position-stable.
    let hs = doc.get("hists").expect("hists field").as_array().unwrap();
    let hist_names: Vec<&str> = hs
        .iter()
        .map(|h| h.get("name").expect("hist.name").as_str().unwrap())
        .collect();
    let hist_registry: Vec<&str> = hist::all().iter().map(|h| h.name()).collect();
    assert_eq!(
        hist_names, hist_registry,
        "hist set drifted from the registry"
    );
    for h in hs {
        let buckets = h.get("buckets").expect("hist.buckets").as_array().unwrap();
        assert_eq!(buckets.len(), hist::NUM_BUCKETS, "all log2 buckets present");
        let total: u64 = buckets.iter().map(|b| b.as_u64().unwrap()).sum();
        assert_eq!(
            total,
            h.get("count").expect("hist.count").as_u64().unwrap(),
            "bucket sum must equal the sample count"
        );
        assert!(h.get("sum_ns").expect("hist.sum_ns").as_u64().is_some());
    }
    // A compile cannot happen without per-row lexmin solves or legality
    // Farkas systems; their latency histograms must have samples.
    let hist_count = |n: &str| {
        hs.iter()
            .find(|h| h.get("name").unwrap().as_str() == Some(n))
            .and_then(|h| h.get("count").unwrap().as_u64())
            .unwrap()
    };
    assert!(hist_count("ilp.latency.search_row") > 0);
    assert!(hist_count("ilp.latency.legality") > 0);
}

#[test]
fn profile_json_schema_is_stable_on_stdin() {
    let (stdout, _stderr, ok) = plutoc(&["--profile-json"], SRC);
    assert!(ok);
    let doc = json::parse(&stdout).expect("stdout must be exactly one JSON document");
    assert_profile_shape(&doc, "stdin");
}

#[test]
fn profile_json_works_on_the_shipped_examples() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/jacobi-1d.c");
    let (stdout, _stderr, ok) = plutoc(&["--profile-json", path], "");
    assert!(ok);
    let doc = json::parse(&stdout).expect("valid JSON");
    assert_profile_shape(&doc, "jacobi-1d");
}

#[test]
fn profile_table_goes_to_stderr_and_c_to_stdout() {
    let (stdout, stderr, ok) = plutoc(&["--profile"], SRC);
    assert!(ok);
    assert!(
        stdout.contains("#pragma omp parallel for"),
        "C still emitted"
    );
    assert!(stderr.contains("ilp.pivots"), "table on stderr:\n{stderr}");
    assert!(stderr.contains("optimize"), "phase rows on stderr");
}

#[test]
fn profile_and_analyze_json_conflict_is_rejected() {
    let (_stdout, stderr, ok) = plutoc(&["--profile-json", "--analyze-json"], SRC);
    assert!(!ok);
    assert!(stderr.contains("stdout"));
}

/// A consumer written against `pluto-profile/1` — one that reads only
/// the v1 fields and ignores keys it does not know — still works on a
/// v2 document: v2 only *adds* the `exec` field.
#[test]
fn v1_consumers_can_read_v2_documents() {
    let (stdout, _stderr, ok) = plutoc(&["--profile-json"], SRC);
    assert!(ok);
    let doc = json::parse(&stdout).expect("valid JSON");
    // Exactly the access pattern of a v1 consumer:
    assert!(doc.get("kernel").unwrap().as_str().is_some());
    assert!(doc.get("total_ns").unwrap().as_u64().unwrap() > 0);
    let phases = doc.get("phases").unwrap().as_array().unwrap();
    assert!(!phases.is_empty());
    let counters_j = doc.get("counters").unwrap().as_array().unwrap();
    assert_eq!(counters_j.len(), counters::all().len());
    // The only versioned gate a v1 consumer has is the schema prefix.
    let schema = doc.get("schema").unwrap().as_str().unwrap();
    assert!(schema.starts_with("pluto-profile/"));
}

/// A consumer written against `pluto-profile/2` — reading the v2 fields
/// including `exec`, ignoring keys it does not know — still works on a
/// v3 document: v3 only *adds* the `hists` section.
#[test]
fn v2_consumers_can_read_v3_documents() {
    let (stdout, _stderr, ok) = plutoc(&["--profile-json"], SRC);
    assert!(ok);
    let doc = json::parse(&stdout).expect("valid JSON");
    // Exactly the access pattern of a v2 consumer:
    assert!(doc.get("kernel").unwrap().as_str().is_some());
    assert!(doc.get("total_ns").unwrap().as_u64().unwrap() > 0);
    assert!(!doc.get("phases").unwrap().as_array().unwrap().is_empty());
    assert_eq!(
        doc.get("counters").unwrap().as_array().unwrap().len(),
        counters::all().len()
    );
    // The v2 addition: exec is always present (null for compile-only).
    assert!(doc.get("exec").unwrap().is_null());
    let schema = doc.get("schema").unwrap().as_str().unwrap();
    assert!(schema.starts_with("pluto-profile/"));
}

#[test]
fn compile_audited_returns_a_populated_profile() {
    let prog = pluto_repro::frontend::parse(SRC).expect("parses");
    let compiled = pluto_repro::pipeline::compile_audited(
        &prog,
        pluto_repro::pluto::Optimizer::new().tile_size(8),
        None,
    )
    .expect("compiles");
    assert!(compiled.is_clean());
    let p = &compiled.profile;
    assert!(p.total_ns > 0);
    assert!(p.phase("optimize/search").is_some());
    assert!(p.phase("analyze").is_some());
    assert!(p.counter("ilp.solves").unwrap() > 0);
    assert_eq!(p.counters.len(), counters::all().len());
    // The JSON round-trips through the in-tree parser.
    assert!(json::parse(&p.to_json(None)).is_ok());
}
