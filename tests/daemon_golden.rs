//! Golden tests pinning the `plutod` compile-service surface: the
//! `pluto-rpc/1` request/response protocol, the `pluto-stats/1`
//! aggregate, and the `pluto-log/1` per-request record (schemas in
//! PERFORMANCE.md §5.6–5.7). A failure here means a wire schema
//! changed: bump the schema string and PERFORMANCE.md together, never
//! silently.
//!
//! The centerpiece is the concurrent stress test: many clients, the
//! thirteen paper kernels, repeats — asserting the aggregation
//! invariant (`pluto-stats/1` == the exact component-wise sum of the
//! served `pluto-profile/3` documents) and that the daemon's generated
//! C is bit-identical to `plutoc --threads 1` on the same source.

use pluto_repro::daemon::Daemon;
use pluto_repro::obs::json::{self, Json};
use std::collections::HashMap;
use std::io::Write as _;
use std::process::{Command, Stdio};

/// The thirteen stress kernels, written in the affine-C grammar the
/// daemon accepts (the paper's benchmark set, sized for a test run).
const KERNELS: &[(&str, &str)] = &[
    (
        "jacobi-1d",
        "params N, T;
         array a[N]; array b[N];
         for (t = 0; t < T; t++) {
           for (i = 2; i <= N - 2; i++)
             b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
           for (j = 2; j <= N - 2; j++)
             a[j] = b[j];
         }",
    ),
    (
        "seidel-2d",
        "params N, T;
         array a[N][N];
         for (t = 0; t <= T - 1; t++)
           for (i = 1; i <= N - 2; i++)
             for (j = 1; j <= N - 2; j++)
               a[i][j] = 0.2 * (a[i][j] + a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]);",
    ),
    (
        "matmul",
        "params N;
         array A[N][N]; array B[N][N]; array C[N][N];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             for (k = 0; k <= N - 1; k++)
               C[i][j] = C[i][j] + A[i][k] * B[k][j];",
    ),
    (
        "mvt",
        "params N;
         array A[N][N]; array x1[N]; array x2[N]; array y1[N]; array y2[N];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             x1[i] = x1[i] + A[i][j] * y1[j];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             x2[i] = x2[i] + A[j][i] * y2[j];",
    ),
    (
        "lu",
        "params N;
         array A[N][N];
         for (k = 0; k <= N - 1; k++) {
           for (j = k + 1; j <= N - 1; j++)
             A[k][j] = A[k][j] / A[k][k];
           for (i = k + 1; i <= N - 1; i++)
             for (j = k + 1; j <= N - 1; j++)
               A[i][j] = A[i][j] - A[i][k] * A[k][j];
         }",
    ),
    (
        "gemver",
        "params N;
         array A[N][N]; array u1[N]; array v1[N]; array u2[N]; array v2[N];
         array x[N]; array y[N]; array w[N];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             x[i] = x[i] + 1.5 * A[j][i] * y[j];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             w[i] = w[i] + 2.5 * A[i][j] * x[j];",
    ),
    (
        "trmm",
        "params N;
         array A[N][N]; array B[N][N];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             for (k = i + 1; k <= N - 1; k++)
               B[i][j] = B[i][j] + A[k][i] * B[k][j];",
    ),
    (
        "syrk",
        "params N, M;
         array A[N][M]; array C[N][N];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= N - 1; j++)
             for (k = 0; k <= M - 1; k++)
               C[i][j] = C[i][j] + A[i][k] * A[j][k];",
    ),
    (
        "doitgen",
        "params R, Q, P;
         array A[R][Q][P]; array sum[R][Q][P]; array C4[P][P];
         for (r = 0; r <= R - 1; r++)
           for (q = 0; q <= Q - 1; q++)
             for (p = 0; p <= P - 1; p++)
               for (s = 0; s <= P - 1; s++)
                 sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];",
    ),
    (
        "fdtd-2d",
        "params N, T;
         array ex[N][N]; array ey[N][N]; array hz[N][N];
         for (t = 0; t <= T - 1; t++) {
           for (i = 1; i <= N - 1; i++)
             for (j = 0; j <= N - 1; j++)
               ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
           for (i = 0; i <= N - 1; i++)
             for (j = 1; j <= N - 1; j++)
               ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
           for (i = 0; i <= N - 2; i++)
             for (j = 0; j <= N - 2; j++)
               hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
         }",
    ),
    (
        "jacobi-2d",
        "params N, T;
         array a[N][N]; array b[N][N];
         for (t = 0; t <= T - 1; t++) {
           for (i = 1; i <= N - 2; i++)
             for (j = 1; j <= N - 2; j++)
               b[i][j] = 0.2 * (a[i][j] + a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]);
           for (i = 1; i <= N - 2; i++)
             for (j = 1; j <= N - 2; j++)
               a[i][j] = b[i][j];
         }",
    ),
    (
        "trisolv",
        "params N;
         array L[N][N]; array x[N]; array b[N];
         for (i = 0; i <= N - 1; i++) {
           x[i] = b[i];
           for (j = 0; j <= i - 1; j++)
             x[i] = x[i] - L[i][j] * x[j];
         }",
    ),
    (
        "atax",
        "params N, M;
         array A[N][M]; array x[M]; array y[M]; array tmp[N];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= M - 1; j++)
             tmp[i] = tmp[i] + A[i][j] * x[j];
         for (i = 0; i <= N - 1; i++)
           for (j = 0; j <= M - 1; j++)
             y[j] = y[j] + A[i][j] * tmp[i];",
    ),
];

/// Builds a `compile` request line for `source` with a numeric id.
fn compile_request(id: u64, kernel: &str, source: &str) -> String {
    Json::Object(vec![
        (
            "schema".to_string(),
            Json::String("pluto-rpc/1".to_string()),
        ),
        ("id".to_string(), Json::Number(id as f64)),
        ("method".to_string(), Json::String("compile".to_string())),
        ("kernel".to_string(), Json::String(kernel.to_string())),
        ("source".to_string(), Json::String(source.to_string())),
        (
            "options".to_string(),
            Json::Object(vec![("tile".to_string(), Json::Number(8.0))]),
        ),
    ])
    .to_compact()
}

/// Handles one line and parses both output documents.
fn roundtrip(daemon: &Daemon, line: &str) -> (Json, Json) {
    let handled = daemon.handle_line(line);
    assert!(
        !handled.response.contains('\n') && !handled.log.contains('\n'),
        "wire documents must be single lines"
    );
    (
        json::parse(&handled.response).expect("response parses"),
        json::parse(&handled.log).expect("log parses"),
    )
}

fn get<'j>(doc: &'j Json, key: &str) -> &'j Json {
    doc.get(key).unwrap_or_else(|| panic!("missing `{key}`"))
}

fn get_str<'j>(doc: &'j Json, key: &str) -> &'j str {
    get(doc, key)
        .as_str()
        .unwrap_or_else(|| panic!("`{key}` is not a string"))
}

fn get_u64(doc: &Json, key: &str) -> u64 {
    get(doc, key)
        .as_u64()
        .unwrap_or_else(|| panic!("`{key}` is not an integer"))
}

/// The reference compiler: `plutoc --tile 8 --threads 1 -` on the same
/// source (single-threaded dependence analysis, like the daemon).
fn plutoc_reference(source: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_plutoc"))
        .args(["--tile", "8", "--threads", "1", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn plutoc");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(source.as_bytes())
        .expect("write source");
    let out = child.wait_with_output().expect("plutoc runs");
    assert!(
        out.status.success(),
        "plutoc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

// ---------------------------------------------------------------------
// pluto-rpc/1: response schema
// ---------------------------------------------------------------------

#[test]
fn rpc_compile_response_schema_is_stable() {
    let daemon = Daemon::new();
    let (resp, _) = roundtrip(&daemon, &compile_request(7, "jacobi-1d", KERNELS[0].1));

    assert_eq!(get_str(&resp, "schema"), "pluto-rpc/1");
    assert_eq!(get_u64(&resp, "id"), 7, "id is echoed back");
    assert_eq!(get(&resp, "ok").as_bool(), Some(true));

    let result = get(&resp, "result");
    assert_eq!(get_str(result, "kernel"), "jacobi-1d");
    let fnv = get_str(result, "kernel_fnv");
    assert_eq!(fnv.len(), 16, "FNV-1a rendered as 16 hex digits: {fnv}");
    assert!(fnv.bytes().all(|b| b.is_ascii_hexdigit()));
    assert_eq!(get_str(result, "cache"), "miss", "first compile misses");

    let code = get_str(result, "code");
    assert!(
        code.contains("#pragma omp parallel for"),
        "tiled+parallel C"
    );
    assert!(code.contains("floord("), "tiled code uses floord");

    // The embedded per-request profile is a full pluto-profile/3.
    let profile = get(result, "profile");
    assert_eq!(get_str(profile, "schema"), "pluto-profile/3");
    assert!(get_u64(profile, "total_ns") > 0);
    let counters = get(profile, "counters").as_array().unwrap();
    assert!(!counters.is_empty());

    // And the embedded explain report is a full pluto-explain/1.
    let explain = get(result, "explain");
    assert_eq!(get_str(explain, "schema"), "pluto-explain/1");

    // String ids round-trip too.
    let (resp, _) = roundtrip(
        &daemon,
        r#"{"schema": "pluto-rpc/1", "id": "req-a", "method": "health"}"#,
    );
    assert_eq!(get_str(&resp, "id"), "req-a");
}

#[test]
fn rpc_error_responses_keep_schema() {
    let daemon = Daemon::new();
    // (request line, expected error fragment)
    let cases: &[(&str, &str)] = &[
        ("{not json", "bad JSON"),
        (r#"{"id": 1}"#, "missing `method`"),
        (r#"{"id": 2, "method": "reticulate"}"#, "unknown method"),
        (
            r#"{"id": 3, "method": "compile"}"#,
            "compile expects a string `source`",
        ),
        (
            r#"{"id": 4, "method": "compile", "source": "for (i = 0; i < N; i++) z[i*i] = 1;"}"#,
            "parse error",
        ),
        (
            r#"{"id": 5, "method": "compile", "source": "params N;", "options": {"tile": 0}}"#,
            "`tile` must be a positive integer",
        ),
        (
            r#"{"id": 6, "method": "compile", "source": "params N;", "options": {"frobnicate": 1}}"#,
            "unknown option `frobnicate`",
        ),
    ];
    for (line, fragment) in cases {
        let (resp, log) = roundtrip(&daemon, line);
        assert_eq!(get_str(&resp, "schema"), "pluto-rpc/1", "{line}");
        assert_eq!(get(&resp, "ok").as_bool(), Some(false), "{line}");
        let error = get_str(&resp, "error");
        assert!(error.contains(fragment), "{line}: got `{error}`");
        assert_eq!(get_str(&log, "status"), "error", "{line}");
        assert!(get_str(&log, "error").contains(fragment), "{line}");
    }
    // Only *compile* failures count as service errors; protocol noise
    // (bad JSON, unknown methods) is answered but not aggregated.
    assert_eq!(daemon.metrics().errors(), 4);
    assert_eq!(daemon.metrics().requests(), 0);
}

// ---------------------------------------------------------------------
// pluto-log/1: the per-request stderr record
// ---------------------------------------------------------------------

#[test]
fn log_record_schema_is_stable() {
    let daemon = Daemon::new();
    let (_, log) = roundtrip(&daemon, &compile_request(1, "matmul", KERNELS[2].1));

    assert_eq!(get_str(&log, "schema"), "pluto-log/1");
    assert_eq!(get_u64(&log, "id"), 1);
    assert_eq!(get_str(&log, "method"), "compile");
    assert_eq!(get_str(&log, "status"), "ok");
    assert!(get_u64(&log, "wall_ns") > 0);
    assert_eq!(get_str(&log, "kernel"), "matmul");
    assert_eq!(get_str(&log, "kernel_fnv").len(), 16);
    assert_eq!(get_str(&log, "cache"), "miss");

    // Phase breakdown: the compile pipeline's top-level spans.
    let phases = get(&log, "phases").as_array().unwrap();
    let paths: Vec<&str> = phases.iter().map(|p| get_str(p, "path")).collect();
    for expected in ["parse", "deps", "optimize", "codegen"] {
        assert!(paths.contains(&expected), "missing phase `{expected}`");
    }

    // Top counters: at most five, every value positive, sorted
    // descending so the heaviest work reads first.
    let counters = get(&log, "counters").as_array().unwrap();
    assert!(!counters.is_empty() && counters.len() <= 5);
    let values: Vec<u64> = counters.iter().map(|c| get_u64(c, "value")).collect();
    assert!(values.iter().all(|&v| v > 0));
    assert!(values.windows(2).all(|w| w[0] >= w[1]), "{values:?}");

    // A repeat is logged as a cache hit with no phase work.
    let (_, log) = roundtrip(&daemon, &compile_request(2, "matmul", KERNELS[2].1));
    assert_eq!(get_str(&log, "cache"), "hit");
    assert!(get(&log, "phases").as_array().unwrap().is_empty());
}

// ---------------------------------------------------------------------
// pluto-stats/1 and health
// ---------------------------------------------------------------------

#[test]
fn stats_and_health_schemas_are_stable() {
    let daemon = Daemon::new();
    roundtrip(&daemon, &compile_request(1, "mvt", KERNELS[3].1));
    roundtrip(&daemon, &compile_request(2, "mvt", KERNELS[3].1));

    let (resp, log) = roundtrip(&daemon, r#"{"id": 3, "method": "stats"}"#);
    assert_eq!(get_str(&log, "method"), "stats");
    let stats = get(&resp, "result");
    assert_eq!(get_str(stats, "schema"), "pluto-stats/1");
    assert!(get_u64(stats, "uptime_ns") > 0);
    assert_eq!(get_u64(stats, "requests"), 2);
    assert_eq!(get_u64(stats, "errors"), 0);

    let cache = get(stats, "cache");
    assert_eq!(get_u64(cache, "hits"), 1);
    assert_eq!(get_u64(cache, "misses"), 1);
    assert_eq!(get_u64(cache, "evictions"), 0);
    assert_eq!(get_u64(cache, "entries"), 1);
    assert_eq!(
        get_u64(cache, "capacity"),
        pluto_repro::daemon::DEFAULT_CACHE_CAP as u64
    );

    // Rolling whole-compile latency histogram with quantile estimates.
    let latency = get(stats, "latency");
    assert_eq!(get_u64(latency, "count"), 2);
    assert!(get_u64(latency, "sum_ns") > 0);
    for q in ["p50_ns", "p90_ns", "p99_ns"] {
        assert!(get_u64(latency, q) > 0, "{q}");
    }
    assert_eq!(
        get(latency, "buckets").as_array().unwrap().len(),
        pluto_repro::obs::hist::NUM_BUCKETS
    );

    // Full registries in registry order, zeros included — the same
    // contract as pluto-profile/3.
    let counters = get(stats, "counters").as_array().unwrap();
    assert_eq!(counters.len(), pluto_repro::obs::counters::all().len());
    let hists = get(stats, "hists").as_array().unwrap();
    assert_eq!(hists.len(), pluto_repro::obs::hist::all().len());
    assert!(get(stats, "phases").as_array().is_some());

    let (resp, _) = roundtrip(&daemon, r#"{"id": 4, "method": "health"}"#);
    let health = get(&resp, "result");
    assert_eq!(get_str(health, "status"), "ok");
    assert!(get_u64(health, "uptime_ns") > 0);
    assert_eq!(get_u64(health, "requests"), 2);
    assert_eq!(get_u64(health, "errors"), 0);
    assert_eq!(get_u64(health, "cache_entries"), 1);
    assert!(get(health, "pool_workers").as_u64().is_some());
}

// ---------------------------------------------------------------------
// The schedule cache
// ---------------------------------------------------------------------

#[test]
fn cache_capacity_bound_evicts_oldest_first() {
    let daemon = Daemon::with_cache_cap(2);
    let (a, b, c) = (KERNELS[0], KERNELS[3], KERNELS[11]);
    for (i, (name, src)) in [a, b, c].iter().enumerate() {
        let (resp, _) = roundtrip(&daemon, &compile_request(i as u64, name, src));
        assert_eq!(get_str(get(&resp, "result"), "cache"), "miss");
    }
    assert_eq!(daemon.cache_len(), 2, "capacity bound holds");
    assert_eq!(daemon.metrics().cache_totals(), (0, 3, 1));

    // The oldest entry (a) was the FIFO victim: recompiling it misses,
    // while the newest (c) still hits.
    let (resp, _) = roundtrip(&daemon, &compile_request(10, c.0, c.1));
    assert_eq!(get_str(get(&resp, "result"), "cache"), "hit");
    let (resp, _) = roundtrip(&daemon, &compile_request(11, a.0, a.1));
    assert_eq!(get_str(get(&resp, "result"), "cache"), "miss");
}

#[test]
fn warm_repeat_is_an_order_of_magnitude_faster() {
    let daemon = Daemon::new();
    let (name, src) = KERNELS[1]; // seidel-2d: a heavy cold compile
    let (cold, _) = roundtrip(&daemon, &compile_request(1, name, src));
    let (warm, log) = roundtrip(&daemon, &compile_request(2, name, src));

    let cold_r = get(&cold, "result");
    let warm_r = get(&warm, "result");
    assert_eq!(get_str(cold_r, "cache"), "miss");
    assert_eq!(get_str(warm_r, "cache"), "hit");
    assert_eq!(get_str(&log, "cache"), "hit", "hit visible in the log line");
    assert_eq!(
        get_str(cold_r, "code"),
        get_str(warm_r, "code"),
        "the cache serves the identical schedule"
    );

    // The acceptance bar: a warm repeat skips parse, dependence
    // analysis, search, and codegen — ≥10× faster end to end.
    let cold_ns = get_u64(get(cold_r, "profile"), "total_ns");
    let warm_ns = get_u64(get(warm_r, "profile"), "total_ns");
    assert!(
        warm_ns * 10 <= cold_ns,
        "warm repeat not ≥10× faster: cold {cold_ns}ns, warm {warm_ns}ns"
    );
}

// ---------------------------------------------------------------------
// The stress test: N clients, 13 kernels, repeats
// ---------------------------------------------------------------------

/// Per-request facts harvested from one `compile` response, enough to
/// re-derive the service aggregate from the wire documents alone.
struct Served {
    kernel: String,
    cache: String,
    code: String,
    total_ns: u64,
    /// counter name → value (full registry).
    counters: HashMap<String, u64>,
    /// phase path → (calls, wall_ns).
    phases: HashMap<String, (u64, u64)>,
    /// hist name → (count, sum_ns, buckets).
    hists: HashMap<String, (u64, u64, Vec<u64>)>,
}

fn harvest(resp: &Json) -> Served {
    assert_eq!(get(resp, "ok").as_bool(), Some(true), "{resp:?}");
    let r = get(resp, "result");
    let profile = get(r, "profile");
    Served {
        kernel: get_str(r, "kernel").to_string(),
        cache: get_str(r, "cache").to_string(),
        code: get_str(r, "code").to_string(),
        total_ns: get_u64(profile, "total_ns"),
        counters: get(profile, "counters")
            .as_array()
            .unwrap()
            .iter()
            .map(|c| (get_str(c, "name").to_string(), get_u64(c, "value")))
            .collect(),
        phases: get(profile, "phases")
            .as_array()
            .unwrap()
            .iter()
            .map(|p| {
                (
                    get_str(p, "path").to_string(),
                    (get_u64(p, "calls"), get_u64(p, "wall_ns")),
                )
            })
            .collect(),
        hists: get(profile, "hists")
            .as_array()
            .unwrap()
            .iter()
            .map(|h| {
                (
                    get_str(h, "name").to_string(),
                    (
                        get_u64(h, "count"),
                        get_u64(h, "sum_ns"),
                        get(h, "buckets")
                            .as_array()
                            .unwrap()
                            .iter()
                            .map(|b| b.as_u64().unwrap())
                            .collect(),
                    ),
                )
            })
            .collect(),
    }
}

#[test]
fn concurrent_stress_aggregation_invariant_and_plutoc_identical() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 2;
    let daemon = Daemon::new();

    // Cold pass: every kernel once, each checked bit-identical against
    // the plutoc reference on the same source and options.
    let mut served: Vec<Served> = Vec::new();
    for (i, (name, src)) in KERNELS.iter().enumerate() {
        let (resp, _) = roundtrip(&daemon, &compile_request(i as u64, name, src));
        let s = harvest(&resp);
        assert_eq!(s.cache, "miss");
        assert_eq!(
            s.code,
            plutoc_reference(src),
            "`{name}`: daemon C differs from plutoc --threads 1"
        );
        served.push(s);
    }

    // Stress pass: CLIENTS threads hammer the warm daemon with every
    // kernel ROUNDS times, plus one thread-unique cold variant each —
    // concurrent hits, misses, and aggregate merges all interleave.
    let concurrent: Vec<Served> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let daemon = &daemon;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for round in 0..ROUNDS {
                        for (k, (name, src)) in KERNELS.iter().enumerate() {
                            let id = (client * 1000 + round * 100 + k) as u64;
                            let (resp, _) = roundtrip(daemon, &compile_request(id, name, src));
                            mine.push(harvest(&resp));
                        }
                    }
                    // A source only this client compiles: a jacobi-1d
                    // variant whose distinct coefficient gives it a
                    // distinct content key, so cold compiles race too.
                    let unique = KERNELS[0].1.replace("0.333", &format!("0.{}", 41 + client));
                    let (resp, _) = roundtrip(
                        daemon,
                        &compile_request(9000 + client as u64, "unique", &unique),
                    );
                    let s = harvest(&resp);
                    assert_eq!(s.cache, "miss");
                    mine.push(s);
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    served.extend(concurrent);

    // Repeats are bit-identical: every response for a kernel carries
    // exactly the bytes the cold (plutoc-checked) compile produced.
    let mut reference: HashMap<&str, &str> = HashMap::new();
    for s in &served[..KERNELS.len()] {
        reference.insert(&s.kernel, &s.code);
    }
    for s in &served {
        if let Some(code) = reference.get(s.kernel.as_str()) {
            assert_eq!(&s.code, code, "`{}` response not bit-identical", s.kernel);
        }
    }

    let total = served.len() as u64;
    let hits = served.iter().filter(|s| s.cache == "hit").count() as u64;
    let misses = served.iter().filter(|s| s.cache == "miss").count() as u64;
    assert_eq!(
        total,
        (KERNELS.len() * (1 + CLIENTS * ROUNDS) + CLIENTS) as u64
    );
    assert_eq!(
        misses,
        (KERNELS.len() + CLIENTS) as u64,
        "13 cold + 4 unique"
    );
    assert!(hits > 0 && hits + misses == total);

    // The aggregation invariant, re-derived from the wire documents:
    // every pluto-stats/1 total equals the exact component-wise sum of
    // the served pluto-profile/3 documents.
    let (resp, _) = roundtrip(&daemon, r#"{"id": 1, "method": "stats"}"#);
    let stats = get(&resp, "result");
    assert_eq!(get_u64(stats, "requests"), total);
    assert_eq!(get_u64(stats, "errors"), 0);
    let cache = get(stats, "cache");
    assert_eq!(get_u64(cache, "hits"), hits);
    assert_eq!(get_u64(cache, "misses"), misses);

    for c in get(stats, "counters").as_array().unwrap() {
        let name = get_str(c, "name");
        let expected: u64 = served.iter().map(|s| s.counters[name]).sum();
        assert_eq!(get_u64(c, "value"), expected, "counter `{name}` not Σ");
    }

    for p in get(stats, "phases").as_array().unwrap() {
        let path = get_str(p, "path");
        let (calls, wall): (u64, u64) = served.iter().fold((0, 0), |(c, w), s| {
            let (pc, pw) = s.phases.get(path).copied().unwrap_or((0, 0));
            (c + pc, w + pw)
        });
        assert_eq!(get_u64(p, "calls"), calls, "phase `{path}` calls not Σ");
        assert_eq!(get_u64(p, "wall_ns"), wall, "phase `{path}` wall not Σ");
    }

    for h in get(stats, "hists").as_array().unwrap() {
        let name = get_str(h, "name");
        let (count, sum): (u64, u64) = served
            .iter()
            .map(|s| (s.hists[name].0, s.hists[name].1))
            .fold((0, 0), |(c, n), (hc, hn)| (c + hc, n + hn));
        assert_eq!(get_u64(h, "count"), count, "hist `{name}` count not Σ");
        assert_eq!(get_u64(h, "sum_ns"), sum, "hist `{name}` sum not Σ");
        let buckets = get(h, "buckets").as_array().unwrap();
        for (i, b) in buckets.iter().enumerate() {
            let expected: u64 = served.iter().map(|s| s.hists[name].2[i]).sum();
            assert_eq!(b.as_u64(), Some(expected), "hist `{name}` bucket {i} not Σ");
        }
    }

    // The rolling latency histogram: one sample per request, summing
    // exactly the per-request total_ns values.
    let latency = get(stats, "latency");
    assert_eq!(get_u64(latency, "count"), total);
    assert_eq!(
        get_u64(latency, "sum_ns"),
        served.iter().map(|s| s.total_ns).sum::<u64>()
    );
}

// ---------------------------------------------------------------------
// The plutod binary end to end (stdio transport)
// ---------------------------------------------------------------------

#[test]
fn plutod_binary_serves_stdio() {
    let (name, src) = KERNELS[0];
    let requests = format!(
        "{}\n{}\n{}\n",
        compile_request(1, name, src),
        compile_request(2, name, src),
        r#"{"id": 3, "method": "stats"}"#
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_plutod"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn plutod");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(requests.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("plutod runs");
    assert!(out.status.success());

    // One response line per request on stdout, in order.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let responses: Vec<Json> = stdout
        .lines()
        .map(|l| json::parse(l).expect("response line parses"))
        .collect();
    assert_eq!(responses.len(), 3);
    assert_eq!(get_str(get(&responses[0], "result"), "cache"), "miss");
    assert_eq!(get_str(get(&responses[1], "result"), "cache"), "hit");
    let stats = get(&responses[2], "result");
    assert_eq!(get_str(stats, "schema"), "pluto-stats/1");
    assert_eq!(get_u64(get(stats, "cache"), "hits"), 1);

    // One pluto-log/1 line per request on stderr, hit/miss visible.
    let stderr = String::from_utf8_lossy(&out.stderr);
    let logs: Vec<Json> = stderr
        .lines()
        .map(|l| json::parse(l).expect("log line parses"))
        .collect();
    assert_eq!(logs.len(), 3);
    assert_eq!(get_str(&logs[0], "schema"), "pluto-log/1");
    assert_eq!(get_str(&logs[0], "cache"), "miss");
    assert_eq!(get_str(&logs[1], "cache"), "hit");
    assert_eq!(get_str(&logs[2], "method"), "stats");
}
