//! Golden tests for the static analyzer: known-good pipelines must come
//! out clean, and deliberately broken fixtures must trigger the expected
//! diagnostic codes with concrete witnesses.

use pluto::{Optimizer, Parallelism};
use pluto_analyze::{analyze, AnalysisInput, Code, Severity};
use pluto_codegen::{generate, original_schedule};
use pluto_frontend::kernels;
use pluto_ir::analyze_dependences;
use pluto_repro::pipeline::compile_audited;

fn error_codes(diags: &[pluto_analyze::Diagnostic]) -> Vec<Code> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

/// SOR and Seidel — the paper's pipelined-parallelism kernels — must be
/// analyzer-clean after tiling + tile-space wavefronting: every loop the
/// generator marks parallel is independently proved race-free.
#[test]
fn sor_and_seidel_wavefront_are_analyzer_clean() {
    for (name, kernel) in [
        ("sor-2d", kernels::sor_2d()),
        ("seidel-2d", kernels::seidel_2d()),
    ] {
        let compiled = compile_audited(
            &kernel.program,
            Optimizer::new().tile_size(8).wavefront_degrees(2),
            None,
        )
        .unwrap_or_else(|e| panic!("{name}: optimize failed: {e}"));
        assert!(
            compiled.is_clean(),
            "{name}: expected analyzer-clean, got:\n{}",
            pluto_analyze::render_text(&compiled.diagnostics)
        );
    }
}

/// The race detector must agree with codegen's parallel markers on every
/// library kernel, across the pipeline configurations the experiments
/// use. (The detector never reads `stmt_par`; agreement here means the
/// search's verdicts survive an independent re-derivation.)
#[test]
fn race_detector_agrees_with_codegen_on_all_kernels() {
    for (name, kernel) in kernels::all() {
        for (cfg_name, opt) in [
            ("untiled", Optimizer::new().tiling(false)),
            ("tiled", Optimizer::new().tile_size(8)),
            (
                "wavefront",
                Optimizer::new().tile_size(8).wavefront_degrees(2),
            ),
        ] {
            let compiled = compile_audited(&kernel.program, opt, None)
                .unwrap_or_else(|e| panic!("{name}/{cfg_name}: optimize failed: {e}"));
            let races: Vec<_> = compiled
                .diagnostics
                .iter()
                .filter(|d| d.code == Code::Race)
                .collect();
            assert!(
                races.is_empty(),
                "{name}/{cfg_name}: race detector disagrees with codegen markers:\n{}",
                pluto_analyze::render_text(&compiled.diagnostics)
            );
        }
    }
}

/// Force-marking matmul's reduction (k) loop parallel is a race the
/// detector must flag — and the witness must be a genuine carried pair.
#[test]
fn force_marked_reduction_loop_triggers_pl001() {
    let kernel = kernels::matmul();
    let prog = &kernel.program;
    let deps = analyze_dependences(prog, true);
    let mut t = original_schedule(prog);
    // Rows of the 2d+1 schedule: 0 scalar, 1 = i, 2 scalar, 3 = j,
    // 4 scalar, 5 = k. The k loop carries the C[i][j] reduction.
    let force = |t: &mut pluto::Transformation, row: usize| {
        t.rows[row].par = Parallelism::Parallel;
        for sp in t.stmt_par.iter_mut() {
            sp[row] = Parallelism::Parallel;
        }
    };
    force(&mut t, 5);
    let ast = generate(prog, &t);
    let diags = analyze(&AnalysisInput {
        program: prog,
        deps: &deps,
        transform: &t,
        ast: &ast,
        extents: None,
        param_values: None,
        ledger: None,
    });
    assert!(
        error_codes(&diags).contains(&Code::Race),
        "expected PL001 on the forced-parallel k loop, got:\n{}",
        pluto_analyze::render_text(&diags)
    );
    let race = diags.iter().find(|d| d.code == Code::Race).unwrap();
    assert!(
        !race.witness.is_empty(),
        "PL001 must carry a concrete witness pair"
    );

    // Control: the i loop genuinely is parallel — marking it must be
    // accepted by the same detector.
    let mut t_ok = original_schedule(prog);
    force(&mut t_ok, 1);
    let ast_ok = generate(prog, &t_ok);
    let diags_ok = analyze(&AnalysisInput {
        program: prog,
        deps: &deps,
        transform: &t_ok,
        ast: &ast_ok,
        extents: None,
        param_values: None,
        ledger: None,
    });
    assert!(
        !diags_ok.iter().any(|d| d.code == Code::Race),
        "i loop is parallel; detector must not flag it:\n{}",
        pluto_analyze::render_text(&diags_ok)
    );
}

/// Corrupting the wavefront row's skew (flipping one tile coefficient's
/// sign) breaks the property that the remaining tile loops are parallel —
/// the detector must catch the scattering/marker mismatch.
#[test]
fn flipped_wavefront_skew_triggers_pl001() {
    let kernel = kernels::seidel_2d();
    let prog = &kernel.program;
    let optimized = Optimizer::new()
        .tile_size(8)
        .wavefront_degrees(2)
        .optimize(prog)
        .expect("optimize seidel");
    let mut t = optimized.result.transform.clone();
    // The wavefront row is the first row of the outermost tile band; it
    // sums the band's tile dims. Flip the sign of its last nonzero tile
    // coefficient for every statement.
    let wave_row = t.bands[0].start;
    let mut flipped = false;
    for st in t.stmts.iter_mut() {
        let row = &mut st.rows[wave_row];
        if let Some(last_nz) = (0..row.len()).rev().find(|&j| row[j] != 0) {
            row[last_nz] = -row[last_nz];
            flipped = true;
        }
    }
    assert!(flipped, "no nonzero coefficient found in the wavefront row");
    let ast = generate(prog, &t);
    let diags = analyze(&AnalysisInput {
        program: prog,
        deps: &optimized.deps,
        transform: &t,
        ast: &ast,
        extents: None,
        param_values: None,
        ledger: None,
    });
    assert!(
        error_codes(&diags).contains(&Code::Race),
        "expected PL001 after flipping the wavefront skew, got:\n{}",
        pluto_analyze::render_text(&diags)
    );
}

/// A declared array extent one element too small must trigger PL002 with
/// a witness iteration that actually reaches the bad subscript.
#[test]
fn shrunk_extent_triggers_pl002_with_witness() {
    // a[i+1] with i <= N-2 needs extent N; declare N-1.
    let src = "
      params N;
      array a[N - 1]; array b[N];
      for (i = 0; i <= N - 2; i++)
        b[i] = a[i + 1];
    ";
    let unit = pluto_frontend::parse_unit(src).expect("parse");
    let compiled = compile_audited(
        &unit.program,
        Optimizer::new().tiling(false),
        Some(unit.extent_rows()),
    )
    .expect("optimize");
    let oob: Vec<_> = compiled
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::Oob)
        .collect();
    assert!(
        !oob.is_empty(),
        "expected PL002 for the shrunk extent, got:\n{}",
        pluto_analyze::render_text(&compiled.diagnostics)
    );
    let d = oob[0];
    assert!(
        !d.witness.is_empty(),
        "PL002 must carry a witness iteration"
    );
    assert!(
        d.message.contains('a'),
        "diagnostic should name the array: {}",
        d.message
    );

    // Control: with the correct extent the same program proves clean.
    let ok_src = src.replace("array a[N - 1]", "array a[N]");
    let unit_ok = pluto_frontend::parse_unit(&ok_src).expect("parse");
    let compiled_ok = compile_audited(
        &unit_ok.program,
        Optimizer::new().tiling(false),
        Some(unit_ok.extent_rows()),
    )
    .expect("optimize");
    assert!(
        compiled_ok.is_clean(),
        "correct extents must be clean:\n{}",
        pluto_analyze::render_text(&compiled_ok.diagnostics)
    );
}

/// The lint pass: a guard that is implied by its context, and shadowed
/// binding names, are reported as warnings (never errors).
#[test]
fn lints_report_warnings_not_errors() {
    use pluto_codegen::{AffExpr, Ast, Bound, CondRow, LoopNode};
    let kernel = kernels::matmul();
    let prog = &kernel.program;
    let deps = analyze_dependences(prog, true);
    let t = original_schedule(prog);
    // Hand-built AST: for c1 in 0..=N-1 { if (c1 >= 0) { for c1' ... } }
    // with the inner loop reusing the name `c1`.
    let inner = Ast::Loop(LoopNode {
        var: 2,
        name: "c1".into(),
        lb: Bound {
            groups: vec![vec![AffExpr::constant(0)]],
        },
        ub: Bound {
            groups: vec![vec![AffExpr::constant(0)]],
        },
        parallel: false,
        vector: false,
        unroll: 1,
        level: None,
        body: Box::new(Ast::Seq(vec![])),
    });
    let guarded = Ast::Guard {
        conds: vec![CondRow {
            terms: vec![(1, 1)],
            konst: 0,
            eq: false,
        }],
        body: Box::new(inner),
    };
    let ast = Ast::Loop(LoopNode {
        var: 1,
        name: "c1".into(),
        lb: Bound {
            groups: vec![vec![AffExpr::constant(0)]],
        },
        ub: Bound {
            groups: vec![vec![AffExpr {
                terms: vec![(0, 1)],
                konst: -1,
                div: 1,
            }]],
        },
        parallel: false,
        vector: false,
        unroll: 1,
        level: Some(0),
        body: Box::new(guarded),
    });
    let diags = analyze(&AnalysisInput {
        program: prog,
        deps: &deps,
        transform: &t,
        ast: &ast,
        extents: None,
        param_values: None,
        ledger: None,
    });
    let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
    assert!(
        codes.contains(&Code::RedundantGuard),
        "c1 >= 0 is implied by the loop bound: {codes:?}"
    );
    assert!(
        codes.contains(&Code::ShadowedBinding),
        "inner `c1` shadows outer `c1`: {codes:?}"
    );
    assert!(
        diags.iter().all(|d| d.severity != Severity::Error),
        "lints are warnings:\n{}",
        pluto_analyze::render_text(&diags)
    );
}
