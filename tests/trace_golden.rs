//! Golden tests for the runtime-telemetry surface: `obs::json` parser
//! edge cases, the exact `trace_event/1` Chrome-trace shape, and the
//! `plutoc --trace` end-to-end acceptance path on the seidel-2d
//! example (≥ `threads` distinct `tid` timelines with paired B/E
//! events). A golden failure means the trace schema changed: bump
//! `trace_event/1` and PERFORMANCE.md §5.4 together, never silently.

use pluto_repro::obs::json;
use pluto_repro::obs::trace::{Phase, Trace, TraceEvent};
use std::process::Command;

// ---------------------------------------------------------------------
// obs::json edge cases
// ---------------------------------------------------------------------

#[test]
fn parser_handles_escaped_strings() {
    let doc = r#"{"k": "quote \" backslash \\ slash \/ tab \t nl \n unicode é 😀"}"#;
    let v = json::parse(doc).expect("escapes parse");
    assert_eq!(
        v.get("k").unwrap().as_str(),
        Some("quote \" backslash \\ slash / tab \t nl \n unicode é 😀")
    );
    // escape() round-trips control characters and non-ASCII.
    let nasty = "a\"b\\c\u{0007}d\né";
    let quoted = json::escape(nasty);
    let back = json::parse(&format!("{{\"k\": {quoted}}}")).unwrap();
    assert_eq!(back.get("k").unwrap().as_str(), Some(nasty));
}

#[test]
fn parser_handles_deep_nesting() {
    // 300 levels of arrays around one number, then 300 levels of
    // single-key objects.
    let deep_array = format!("{}1{}", "[".repeat(300), "]".repeat(300));
    let mut v = &json::parse(&deep_array).expect("deep arrays parse");
    for _ in 0..300 {
        v = &v.as_array().expect("array level")[0];
    }
    assert_eq!(v.as_u64(), Some(1));

    let deep_obj = format!("{}0{}", "{\"x\":".repeat(300), "}".repeat(300));
    let mut v = &json::parse(&deep_obj).expect("deep objects parse");
    for _ in 0..300 {
        v = v.get("x").expect("object level");
    }
    assert_eq!(v.as_u64(), Some(0));
}

#[test]
fn parser_handles_exponent_literals() {
    let doc = r#"{"a": 1e3, "b": 1.5E+2, "c": 25e-1, "d": -2.5e0, "e": 0e0}"#;
    let v = json::parse(doc).expect("exponents parse");
    assert_eq!(v.get("a").unwrap().as_f64(), Some(1000.0));
    assert_eq!(v.get("b").unwrap().as_f64(), Some(150.0));
    assert_eq!(v.get("c").unwrap().as_f64(), Some(2.5));
    assert_eq!(v.get("d").unwrap().as_f64(), Some(-2.5));
    assert_eq!(v.get("e").unwrap().as_f64(), Some(0.0));
    // Malformed exponents must be rejected, not guessed at.
    assert!(json::parse(r#"{"x": 1e}"#).is_err());
    assert!(json::parse(r#"{"x": 1e+}"#).is_err());
    assert!(json::parse(r#"{"x": .5}"#).is_err());
}

// ---------------------------------------------------------------------
// trace_event/1 golden round-trip
// ---------------------------------------------------------------------

/// Builds a small trace by hand (fixed timestamps — no clock) so the
/// serialized form is fully deterministic.
fn golden_trace() -> Trace {
    let ev = |name: &str, ph, tid, ts_ns: u128, args: &[(&'static str, u64)]| TraceEvent {
        name: name.to_string(),
        ph,
        tid,
        ts_ns,
        args: args.to_vec(),
    };
    Trace {
        events: vec![
            ev("c1", Phase::Begin, 0, 1000, &[("items", 4), ("threads", 2)]),
            ev("c1", Phase::Begin, 1, 1500, &[("items", 2)]),
            ev("c1", Phase::End, 1, 2500, &[("instances", 2)]),
            ev("trace.dropped", Phase::Instant, 1, 2600, &[("events", 1)]),
            ev("c1", Phase::End, 0, 3000, &[("instances", 4)]),
        ],
    }
}

const GOLDEN: &str = r#"{
  "schema": "trace_event/1",
  "displayTimeUnit": "ns",
  "traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "coordinator"}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "worker-1"}},
    {"name": "c1", "ph": "B", "pid": 1, "tid": 0, "ts": 0.000, "args": {"items": 4, "threads": 2}},
    {"name": "c1", "ph": "B", "pid": 1, "tid": 1, "ts": 0.500, "args": {"items": 2}},
    {"name": "c1", "ph": "E", "pid": 1, "tid": 1, "ts": 1.500, "args": {"instances": 2}},
    {"name": "trace.dropped", "ph": "i", "pid": 1, "tid": 1, "ts": 1.600, "s": "t", "args": {"events": 1}},
    {"name": "c1", "ph": "E", "pid": 1, "tid": 0, "ts": 2.000, "args": {"instances": 4}}
  ]
}
"#;

#[test]
fn chrome_trace_output_matches_golden() {
    let doc = golden_trace().to_chrome_json();
    assert_eq!(doc, GOLDEN, "trace_event/1 shape drifted");
}

#[test]
fn chrome_trace_round_trips_through_parser() {
    let doc = golden_trace().to_chrome_json();
    let v = json::parse(&doc).expect("strict RFC 8259");
    assert_eq!(v.get("schema").unwrap().as_str(), Some("trace_event/1"));
    assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
    let evs = v.get("traceEvents").unwrap().as_array().unwrap();
    // 5 events + 2 thread_name metadata records.
    assert_eq!(evs.len(), 7);
    // Timestamps are microseconds normalized to the earliest event.
    let first_real = &evs[2];
    assert_eq!(first_real.get("ts").unwrap().as_f64(), Some(0.0));
    let last = &evs[6];
    assert_eq!(last.get("ts").unwrap().as_f64(), Some(2.0));
    // Instant events carry the scope field.
    assert_eq!(evs[5].get("s").unwrap().as_str(), Some("t"));
}

// ---------------------------------------------------------------------
// plutoc --trace acceptance path
// ---------------------------------------------------------------------

#[test]
fn plutoc_trace_on_seidel_2d_meets_acceptance() {
    let src = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/seidel-2d.c");
    let out_dir = std::env::temp_dir().join(format!("pluto-trace-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).unwrap();
    let out_path = out_dir.join("seidel-trace.json");
    let threads = 4;
    let status = Command::new(env!("CARGO_BIN_EXE_plutoc"))
        .args([
            "--tile",
            "8",
            "--threads",
            &threads.to_string(),
            "--trace",
            out_path.to_str().unwrap(),
            src,
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("plutoc runs");
    assert!(status.success());

    let doc = std::fs::read_to_string(&out_path).expect("trace written");
    let v = json::parse(&doc).expect("trace validates with the in-tree parser");
    assert_eq!(v.get("schema").unwrap().as_str(), Some("trace_event/1"));
    let evs = v.get("traceEvents").unwrap().as_array().unwrap();

    // ≥ `threads` distinct tids, each with paired B/E span events.
    let mut tids: Vec<u64> = evs
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
        .map(|e| e.get("tid").unwrap().as_u64().unwrap())
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.len() >= threads,
        "expected >= {threads} timelines, got {tids:?}"
    );
    for tid in tids {
        let count = |ph: &str| {
            evs.iter()
                .filter(|e| {
                    e.get("tid").unwrap().as_u64() == Some(tid)
                        && e.get("ph").unwrap().as_str() == Some(ph)
                })
                .count()
        };
        let (b, e) = (count("B"), count("E"));
        assert!(b >= 1, "tid {tid} has no spans");
        assert_eq!(b, e, "tid {tid} has unpaired B/E events");
    }
    std::fs::remove_dir_all(&out_dir).ok();
}
