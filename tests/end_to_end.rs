//! The strongest end-to-end oracle: for every paper kernel, executing the
//! Pluto-transformed program (tiled, wavefronted, vector-reordered) must
//! produce arrays bitwise identical to executing the original program —
//! legality preserves each statement instance's inputs, and per-instance
//! flop order is untouched, so even floating point must agree exactly.

use pluto::Optimizer;
use pluto_codegen::{generate, original_schedule};
use pluto_frontend::kernels::{self, Kernel};
use pluto_machine::{run_parallel, run_sequential, Arrays, ParallelConfig};

/// Small parameter values per kernel (order matches `program.params`).
fn small_params(name: &str) -> Vec<i64> {
    match name {
        "jacobi-1d-imper" => vec![9, 23], // T, N
        "fdtd-2d" => vec![6, 11, 13],     // tmax, nx, ny
        "lu" => vec![17],                 // N
        "mvt" => vec![19],                // N
        "seidel-2d" => vec![7, 14],       // T, N
        "matmul" => vec![13],             // N
        "sor-2d" => vec![21],             // N
        "jacobi-2d-imper" => vec![4, 10], // T, N
        "gemver" => vec![13],             // N
        "trmm" => vec![11],               // N
        "syrk" => vec![9],                // N
        "trisolv" => vec![12],            // N
        "doitgen" => vec![6],             // N
        other => panic!("unknown kernel {other}"),
    }
}

fn run_original(k: &Kernel, params: &[i64]) -> Arrays {
    let ast = generate(&k.program, &original_schedule(&k.program));
    let mut arrays = Arrays::new((k.extents)(params));
    arrays.seed_with(kernels::seed_value);
    run_sequential(&k.program, &ast, params, &mut arrays);
    arrays
}

fn check_kernel(k: &Kernel, opt: &Optimizer, params: &[i64], threads: usize, label: &str) {
    let name = &k.program.name;
    let reference = run_original(k, params);
    let optimized = opt
        .optimize(&k.program)
        .unwrap_or_else(|e| panic!("{name}: optimize failed: {e}"));
    let ast = generate(&k.program, &optimized.result.transform);
    let mut arrays = Arrays::new((k.extents)(params));
    arrays.seed_with(kernels::seed_value);
    let ref_stats = if threads <= 1 {
        run_sequential(&k.program, &ast, params, &mut arrays)
    } else {
        run_parallel(
            &k.program,
            &ast,
            params,
            &mut arrays,
            ParallelConfig {
                threads,
                collapse: 1,
            },
        )
    };
    assert!(
        arrays.bitwise_eq(&reference),
        "{name} [{label}]: transformed execution diverges from original\n{}",
        optimized.result.transform.display(&k.program)
    );
    assert!(
        ref_stats.instances > 0,
        "{name} [{label}]: nothing executed"
    );
}

#[test]
fn tiled_sequential_equivalence() {
    let opt = Optimizer::new()
        .tile_size(4)
        .parallel(false)
        .vectorization(false);
    for (name, k) in kernels::all() {
        check_kernel(&k, &opt, &small_params(name), 1, "tiled seq");
    }
}

#[test]
fn untiled_equivalence() {
    let opt = Optimizer::new()
        .tiling(false)
        .parallel(false)
        .vectorization(false);
    for (name, k) in kernels::all() {
        check_kernel(&k, &opt, &small_params(name), 1, "untiled");
    }
}

#[test]
fn full_pipeline_parallel_equivalence() {
    // Tiling + wavefront + vector reorder, executed on 4 threads.
    let opt = Optimizer::new().tile_size(4);
    for (name, k) in kernels::all() {
        check_kernel(&k, &opt, &small_params(name), 4, "tiled par");
    }
}

#[test]
fn two_level_tiling_equivalence() {
    let opt = Optimizer::new()
        .tile_size(3)
        .second_level(2)
        .parallel(false);
    for (name, k) in kernels::all() {
        check_kernel(&k, &opt, &small_params(name), 1, "L2 tiled");
    }
}

#[test]
fn wavefront_two_degrees_equivalence() {
    // Fig. 13's 2-d pipelined parallel variant on seidel + collapse-2 team.
    let k = kernels::seidel_2d();
    let params = small_params("seidel-2d");
    let reference = run_original(&k, &params);
    let opt = Optimizer::new().tile_size(4).wavefront_degrees(2);
    let optimized = opt.optimize(&k.program).unwrap();
    let ast = generate(&k.program, &optimized.result.transform);
    let mut arrays = Arrays::new((k.extents)(&params));
    arrays.seed_with(kernels::seed_value);
    run_parallel(
        &k.program,
        &ast,
        &params,
        &mut arrays,
        ParallelConfig {
            threads: 4,
            collapse: 2,
        },
    );
    assert!(arrays.bitwise_eq(&reference), "2-degree wavefront diverges");
}

#[test]
fn parsed_source_equivalence() {
    // Full source-to-source: parse affine C, transform, execute, compare.
    let src = "
      params N;
      array a[N][N];
      for (i = 1; i < N; i++)
        for (j = 1; j < N; j++)
          a[i][j] = a[i-1][j] + a[i][j-1];
    ";
    let prog = pluto_frontend::parse(src).expect("parses");
    let params = [40i64];
    let extents = vec![vec![40, 40]];
    let mut reference = Arrays::new(extents.clone());
    reference.seed_with(kernels::seed_value);
    let orig = generate(&prog, &original_schedule(&prog));
    run_sequential(&prog, &orig, &params, &mut reference);

    let optimized = Optimizer::new().tile_size(8).optimize(&prog).unwrap();
    let ast = generate(&prog, &optimized.result.transform);
    let mut arrays = Arrays::new(extents);
    arrays.seed_with(kernels::seed_value);
    run_parallel(
        &prog,
        &ast,
        &params,
        &mut arrays,
        ParallelConfig {
            threads: 3,
            collapse: 1,
        },
    );
    assert!(arrays.bitwise_eq(&reference));
}
