//! Integration tests for the `plutoc` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

const SRC: &str = "
params N, T;
array a[N]; array b[N];
for (t = 0; t < T; t++) {
  for (i = 2; i <= N - 2; i++)
    b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
  for (j = 2; j <= N - 2; j++)
    a[j] = b[j];
}
";

fn plutoc(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_plutoc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn plutoc");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write source");
    let out = child.wait_with_output().expect("plutoc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn emits_openmp_c_from_stdin() {
    let (stdout, _, ok) = plutoc(&["--tile", "16", "-"], SRC);
    assert!(ok);
    assert!(stdout.contains("#define S1(t,i)"));
    assert!(stdout.contains("#pragma omp parallel for"));
    assert!(stdout.contains("floord("));
}

#[test]
fn verify_mode_checks_results() {
    let (_, stderr, ok) = plutoc(&["--tile", "8", "--verify", "9,40", "-"], SRC);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verified"), "{stderr}");
}

#[test]
fn show_transform_prints_rows() {
    let (_, stderr, ok) = plutoc(&["--show-transform", "--notile", "-"], SRC);
    assert!(ok);
    assert!(stderr.contains("c1 ="), "{stderr}");
    assert!(stderr.contains("2*t"), "paper's skew-2 visible: {stderr}");
}

#[test]
fn rejects_bad_source() {
    let (_, stderr, ok) = plutoc(&["-"], "for (i = 0; i < N; i++) z[i*i] = 1;");
    assert!(!ok);
    assert!(stderr.contains("plutoc:"), "{stderr}");
}

#[test]
fn verify_param_count_mismatch_fails() {
    let (_, stderr, ok) = plutoc(&["--verify", "5", "-"], SRC);
    assert!(!ok);
    assert!(stderr.contains("expects 2 value(s)"), "{stderr}");
}

#[test]
fn notile_noparallel_emit_plain_loops() {
    let (stdout, _, ok) = plutoc(&["--notile", "--noparallel", "-"], SRC);
    assert!(ok);
    assert!(!stdout.contains("#pragma omp"));
}

#[test]
fn analyze_reports_clean_pipeline() {
    let (stdout, stderr, ok) = plutoc(&["--tile", "8", "--analyze", "-"], SRC);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("0 error(s)"), "{stderr}");
    // The C output still goes to stdout alongside the report.
    assert!(stdout.contains("#define S1(t,i)"));
}

#[test]
fn analyze_json_emits_diagnostics_array() {
    let (stdout, stderr, ok) = plutoc(&["--tile", "8", "--analyze-json", "-"], SRC);
    assert!(ok, "{stderr}");
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "expected a JSON array on stdout, got: {stdout}"
    );
    // JSON mode replaces the C output.
    assert!(!stdout.contains("#define"));
}

#[test]
fn analyze_flags_out_of_bounds_source() {
    // a[i+1] with i <= N-2 needs extent N, but only N-1 is declared.
    let bad = "
params N;
array a[N - 1]; array b[N];
for (i = 0; i <= N - 2; i++)
  b[i] = a[i + 1];
";
    let (_, stderr, ok) = plutoc(&["--notile", "--analyze", "-"], bad);
    assert!(!ok, "analyzer must fail the exit code on PL002");
    assert!(stderr.contains("PL002-oob"), "{stderr}");
    assert!(stderr.contains("witness"), "{stderr}");
    // Without --analyze the same source still compiles (the analyzer is
    // opt-in at the CLI).
    let (_, _, ok2) = plutoc(&["--notile", "-"], bad);
    assert!(ok2);
}

#[test]
fn nonpositive_extent_is_a_clean_error() {
    let src = "
params N;
array a[N - 16]; array b[N];
for (i = 0; i < N - 16; i++)
  b[i] = a[i];
";
    let (_, stderr, ok) = plutoc(&["--verify", "10", "-"], src);
    assert!(!ok);
    assert!(
        stderr.contains("non-positive extent"),
        "expected a proper error, not a panic: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}
