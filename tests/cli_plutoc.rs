//! Integration tests for the `plutoc` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

const SRC: &str = "
params N, T;
array a[N]; array b[N];
for (t = 0; t < T; t++) {
  for (i = 2; i <= N - 2; i++)
    b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
  for (j = 2; j <= N - 2; j++)
    a[j] = b[j];
}
";

fn plutoc(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_plutoc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn plutoc");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write source");
    let out = child.wait_with_output().expect("plutoc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn emits_openmp_c_from_stdin() {
    let (stdout, _, ok) = plutoc(&["--tile", "16", "-"], SRC);
    assert!(ok);
    assert!(stdout.contains("#define S1(t,i)"));
    assert!(stdout.contains("#pragma omp parallel for"));
    assert!(stdout.contains("floord("));
}

#[test]
fn verify_mode_checks_results() {
    let (_, stderr, ok) = plutoc(&["--tile", "8", "--verify", "9,40", "-"], SRC);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verified"), "{stderr}");
}

#[test]
fn show_transform_prints_rows() {
    let (_, stderr, ok) = plutoc(&["--show-transform", "--notile", "-"], SRC);
    assert!(ok);
    assert!(stderr.contains("c1 ="), "{stderr}");
    assert!(stderr.contains("2*t"), "paper's skew-2 visible: {stderr}");
}

#[test]
fn rejects_bad_source() {
    let (_, stderr, ok) = plutoc(&["-"], "for (i = 0; i < N; i++) z[i*i] = 1;");
    assert!(!ok);
    assert!(stderr.contains("plutoc:"), "{stderr}");
}

#[test]
fn verify_param_count_mismatch_fails() {
    let (_, stderr, ok) = plutoc(&["--verify", "5", "-"], SRC);
    assert!(!ok);
    assert!(stderr.contains("expects 2 value(s)"), "{stderr}");
}

#[test]
fn notile_noparallel_emit_plain_loops() {
    let (stdout, _, ok) = plutoc(&["--notile", "--noparallel", "-"], SRC);
    assert!(ok);
    assert!(!stdout.contains("#pragma omp"));
}
