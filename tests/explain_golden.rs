//! Golden tests pinning the `pluto-explain/1` schema emitted by
//! `plutoc --explain-json` and the decision-log event kinds the
//! optimizer produces on the shipped example kernels. A failure here
//! means the explain surface changed: bump the schema string and
//! PERFORMANCE.md together, never silently.

use pluto_repro::obs::json;
use std::process::{Command, Stdio};

fn plutoc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_plutoc"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("plutoc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn example(name: &str) -> String {
    format!("{}/examples/{name}.c", env!("CARGO_MANIFEST_DIR"))
}

/// Asserts one parsed `pluto-explain/1` document against the schema
/// contract: field names, per-row and per-dependence shapes, the stats
/// object, and internal consistency between the sections.
fn assert_explain_shape(doc: &json::Json, expect_kernel: &str) {
    assert_eq!(
        doc.get("schema").expect("schema field").as_str(),
        Some("pluto-explain/1")
    );
    assert_eq!(
        doc.get("kernel").expect("kernel field").as_str(),
        Some(expect_kernel)
    );
    assert!(doc
        .get("program")
        .expect("program field")
        .as_str()
        .is_some());

    let rows = doc.get("rows").expect("rows field").as_array().unwrap();
    assert!(!rows.is_empty());
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.get("index").expect("row.index").as_u64(), Some(i as u64));
        let kind = r.get("kind").expect("row.kind").as_str().unwrap();
        assert!(kind == "loop" || kind == "scalar", "row kind: {kind}");
        let par = r.get("par").expect("row.par").as_str().unwrap();
        assert!(par == "parallel" || par == "sequential", "row par: {par}");
        assert!(r
            .get("tile_level")
            .expect("row.tile_level")
            .as_u64()
            .is_some());
        assert!(matches!(
            r.get("skewed").expect("row.skewed"),
            json::Json::Bool(_)
        ));
    }

    let bands = doc.get("bands").expect("bands field").as_array().unwrap();
    for b in bands {
        let start = b.get("start").expect("band.start").as_u64().unwrap();
        let width = b.get("width").expect("band.width").as_u64().unwrap();
        assert!(width >= 1);
        assert!((start + width) as usize <= rows.len(), "band inside rows");
        assert!(b
            .get("tile_level")
            .expect("band.tile_level")
            .as_u64()
            .is_some());
    }

    let deps = doc
        .get("dependences")
        .expect("dependences field")
        .as_array()
        .unwrap();
    assert!(!deps.is_empty());
    for (i, d) in deps.iter().enumerate() {
        assert_eq!(d.get("index").expect("dep.index").as_u64(), Some(i as u64));
        assert!(d.get("src").expect("dep.src").as_str().is_some());
        assert!(d.get("dst").expect("dep.dst").as_str().is_some());
        let kind = d.get("kind").expect("dep.kind").as_str().unwrap();
        assert!(
            ["flow", "anti", "output", "input"].contains(&kind),
            "dep kind: {kind}"
        );
        assert!(d
            .get("orig_level")
            .expect("dep.orig_level")
            .as_u64()
            .is_some());
        // satisfied_at is a row index or null; when a row, it must exist.
        let sat = d.get("satisfied_at").expect("dep.satisfied_at");
        if let Some(r) = sat.as_u64() {
            assert!((r as usize) < rows.len(), "satisfied_at inside rows");
        } else {
            assert!(sat.is_null());
        }
        for c in d
            .get("carried_at")
            .expect("dep.carried_at")
            .as_array()
            .unwrap()
        {
            assert!((c.as_u64().unwrap() as usize) < rows.len());
        }
    }

    let stats = doc.get("stats").expect("stats field");
    for f in [
        "rows_solved",
        "candidates_rejected",
        "scc_cuts",
        "row_solve_failures",
        "feautrier_fallbacks",
    ] {
        assert!(stats
            .get(f)
            .unwrap_or_else(|| panic!("stats.{f}"))
            .as_u64()
            .is_some());
    }
    assert!(doc
        .get("dropped_events")
        .expect("dropped_events field")
        .as_u64()
        .is_some());

    // Events: every element carries a kind discriminator, and the stats
    // tallies agree with the stream.
    let events = doc.get("events").expect("events field").as_array().unwrap();
    assert!(!events.is_empty());
    let count = |k: &str| {
        events
            .iter()
            .filter(|e| e.get("kind").expect("event.kind").as_str() == Some(k))
            .count() as u64
    };
    assert_eq!(
        stats.get("rows_solved").unwrap().as_u64(),
        Some(count("row_solved"))
    );
    assert_eq!(
        stats.get("scc_cuts").unwrap().as_u64(),
        Some(count("scc_cut"))
    );
    assert_eq!(
        stats.get("row_solve_failures").unwrap().as_u64(),
        Some(count("row_solve_failed"))
    );
}

/// The distinct event kinds of a document's event stream, sorted.
fn event_kinds(doc: &json::Json) -> Vec<String> {
    let mut kinds: Vec<String> = doc
        .get("events")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e.get("kind").unwrap().as_str().unwrap().to_string())
        .collect();
    kinds.sort();
    kinds.dedup();
    kinds
}

/// Seidel-2d (paper Fig. 10): one fused time-skewed band, tiled and
/// wavefronted. The decision log must show exactly the Farkas builds,
/// the three row solves, the band close, tiling, and the wavefront —
/// no cuts, no failures, no Feautrier fallback.
#[test]
fn seidel_explain_json_pins_schema_and_event_kinds() {
    let (stdout, _stderr, ok) = plutoc(&["--explain-json", &example("seidel-2d")]);
    assert!(ok);
    let doc = json::parse(&stdout).expect("stdout must be exactly one JSON document");
    assert_explain_shape(&doc, "seidel-2d");
    assert_eq!(
        event_kinds(&doc),
        [
            "band_closed",
            "farkas_eliminated",
            "row_solved",
            "rows_inserted",
            "wavefront"
        ]
    );
    let stats = doc.get("stats").unwrap();
    assert_eq!(stats.get("rows_solved").unwrap().as_u64(), Some(3));
    assert_eq!(stats.get("scc_cuts").unwrap().as_u64(), Some(0));
    // The time-skewed band: every legality dependence is satisfied at
    // some point-loop row of the final transformation.
    for d in doc.get("dependences").unwrap().as_array().unwrap() {
        if d.get("kind").unwrap().as_str() != Some("input") {
            assert!(d.get("satisfied_at").unwrap().as_u64().is_some());
        }
    }
}

/// Jacobi-1d: two statements the smart fusion policy separates with a
/// scalar cut, so `scc_cut` joins the seidel kinds.
#[test]
fn jacobi_explain_json_pins_schema_and_event_kinds() {
    let (stdout, _stderr, ok) = plutoc(&["--explain-json", &example("jacobi-1d")]);
    assert!(ok);
    let doc = json::parse(&stdout).expect("valid JSON");
    assert_explain_shape(&doc, "jacobi-1d");
    assert_eq!(
        event_kinds(&doc),
        [
            "band_closed",
            "farkas_eliminated",
            "row_solved",
            "rows_inserted",
            "scc_cut",
            "wavefront"
        ]
    );
    let stats = doc.get("stats").unwrap();
    assert_eq!(stats.get("rows_solved").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("scc_cuts").unwrap().as_u64(), Some(1));
}

/// `--explain` is the human form: the report and the decision log go to
/// stderr, the C program still goes to stdout, and the per-row lines
/// distinguish tile-band, point-loop, and wavefront-skewed rows.
#[test]
fn explain_text_goes_to_stderr_and_c_to_stdout() {
    let (stdout, stderr, ok) = plutoc(&["--explain", &example("seidel-2d")]);
    assert!(ok);
    assert!(
        stdout.contains("#pragma omp parallel for"),
        "C still emitted"
    );
    assert!(
        stderr.contains("tile band L1"),
        "tile rows named:\n{stderr}"
    );
    assert!(stderr.contains("wavefront-skewed"), "wavefront row named");
    assert!(stderr.contains("point loop"), "point rows named");
    assert!(stderr.contains("decision log ("), "decision log attached");
    assert!(
        stderr.contains("tile row(s) inserted"),
        "tiling event rendered"
    );
}

/// Only one `*-json` flag may claim stdout.
#[test]
fn explain_json_conflicts_with_other_json_flags() {
    for other in ["--profile-json", "--analyze-json"] {
        let (_stdout, stderr, ok) = plutoc(&["--explain-json", other, &example("jacobi-1d")]);
        assert!(!ok, "{other} + --explain-json must be rejected");
        assert!(stderr.contains("stdout"), "conflict names stdout: {stderr}");
    }
}

/// The ledger-agreement gate: `--analyze` re-proves every positive
/// satisfaction claim of the same decision log the explain document
/// serializes (PL007). A clean exit means the telemetry and the
/// independent derivation agree on every shipped example.
#[test]
fn explain_ledger_agrees_with_the_analyzer() {
    for kernel in ["seidel-2d", "jacobi-1d", "matmul"] {
        let (stdout, stderr, ok) = plutoc(&["--explain-json", "--analyze", &example(kernel)]);
        assert!(ok, "{kernel}: analyzer must be clean:\n{stderr}");
        let doc = json::parse(&stdout).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("pluto-explain/1"));
        assert!(
            !stderr.contains("PL007"),
            "{kernel}: ledger divergence reported:\n{stderr}"
        );
    }
}
