//! Property tests for the polyhedral substrates: exact arithmetic,
//! Fourier–Motzkin projection, and the lexmin ILP solver.
//!
//! Runs on the hermetic `testkit` harness: every failure message carries
//! the case seed, and `TESTKIT_SEED=<n> TESTKIT_CASES=1` replays it.

use pluto_ilp::IlpProblem;
use pluto_linalg::Ratio;
use pluto_poly::ConstraintSet;
use testkit::prop::{check, shrink_vec, Config};
use testkit::Rng;

fn gen_ratio(rng: &mut Rng) -> Ratio {
    Ratio::new(rng.range_i64(-30, 30) as i128, rng.range_i64(1, 12) as i128)
}

/// Random constraint rows over `dims` variables with coefficients in
/// `-3..=3`; the shrinker drops rows and shrinks coefficients toward 0.
fn gen_rows(rng: &mut Rng, dims: usize, max_rows: i64) -> Vec<Vec<i64>> {
    let n = rng.range_i64(1, max_rows) as usize;
    (0..n)
        .map(|_| (0..=dims).map(|_| rng.range_i64(-3, 3)).collect())
        .collect()
}

// `&Vec` (not `&[_]`) is required: `check` infers its case type from this
// parameter, and the generator produces owned `Vec<Vec<i64>>` cases.
#[allow(clippy::ptr_arg)]
fn shrink_rows(rows: &Vec<Vec<i64>>) -> Vec<Vec<Vec<i64>>> {
    shrink_vec(rows, |row| {
        shrink_vec(row, |&c| testkit::prop::shrink_i64(c))
            .into_iter()
            .filter(|r| r.len() == row.len()) // keep the width fixed
            .collect()
    })
    .into_iter()
    .filter(|rs| !rs.is_empty())
    .collect()
}

fn to_set(rows: &[Vec<i64>], dims: usize) -> ConstraintSet {
    let mut s = ConstraintSet::new(dims);
    for r in rows {
        s.add_ineq(r.iter().map(|&v| v as i128).collect());
    }
    s
}

/// Field axioms for the exact rational type.
#[test]
fn ratio_field_axioms() {
    check(
        &Config::with_cases(256).from_env(),
        "ratio_field_axioms",
        |rng| (gen_ratio(rng), gen_ratio(rng), gen_ratio(rng)),
        |_| vec![],
        |&(a, b, c)| {
            let eq = |l: Ratio, r: Ratio, law: &str| {
                if l == r {
                    Ok(())
                } else {
                    Err(format!("{law}: {l:?} != {r:?}"))
                }
            };
            eq(a + b, b + a, "+ commutes")?;
            eq((a + b) + c, a + (b + c), "+ associates")?;
            eq(a * b, b * a, "* commutes")?;
            eq((a * b) * c, a * (b * c), "* associates")?;
            eq(a * (b + c), a * b + a * c, "* distributes")?;
            eq(a + Ratio::ZERO, a, "+ identity")?;
            eq(a * Ratio::ONE, a, "* identity")?;
            eq(a - a, Ratio::ZERO, "- inverse")?;
            if !b.is_zero() {
                eq(a / b * b, a, "/ inverse")?;
            }
            Ok(())
        },
    );
}

/// floor/ceil bracket the rational value.
#[test]
fn ratio_floor_ceil() {
    check(
        &Config::with_cases(256).from_env(),
        "ratio_floor_ceil",
        gen_ratio,
        |_| vec![],
        |&a| {
            let f = Ratio::from(a.floor());
            let c = Ratio::from(a.ceil());
            if !(f <= a && a <= c) {
                return Err(format!("floor/ceil must bracket {a:?}"));
            }
            if !(a - f < Ratio::ONE && c - a < Ratio::ONE) {
                return Err(format!("floor/ceil must be within 1 of {a:?}"));
            }
            Ok(())
        },
    );
}

/// FM projection is sound: a point of the set projects into the
/// projection (membership preserved).
#[test]
fn projection_preserves_membership() {
    check(
        &Config::with_cases(64).from_env(),
        "projection_preserves_membership",
        |rng| {
            let rows = gen_rows(rng, 3, 4);
            let x: Vec<i64> = (0..3).map(|_| rng.range_i64(-5, 5)).collect();
            (rows, x)
        },
        |(rows, x)| {
            shrink_rows(rows)
                .into_iter()
                .map(|rs| (rs, x.clone()))
                .collect()
        },
        |(rows, x)| {
            let s = to_set(rows, 3);
            let p: Vec<i128> = x.iter().map(|&v| v as i128).collect();
            if s.contains(&p) {
                let proj = s.project_out(2, 1);
                if !proj.contains(&p[..2]) {
                    return Err(format!("shadow must contain projection of {p:?}"));
                }
            }
            Ok(())
        },
    );
}

/// FM projection is precise: a point of the shadow lifts to some point;
/// over a *bounded* integer box we check the integer statement by
/// enumeration.
#[test]
fn projection_shadow_points_lift() {
    check(
        &Config::with_cases(64).from_env(),
        "projection_shadow_points_lift",
        |rng| gen_rows(rng, 2, 4),
        shrink_rows,
        |rows| {
            // Box the system so enumeration terminates.
            let mut s = to_set(rows, 2);
            for d in 0..2 {
                let mut lo = vec![0i128; 3];
                lo[d] = 1;
                lo[2] = 6;
                s.add_ineq(lo); // x_d >= -6
                let mut hi = vec![0i128; 3];
                hi[d] = -1;
                hi[2] = 6;
                s.add_ineq(hi); // x_d <= 6
            }
            let proj = s.project_out(1, 1);
            for x0 in -6..=6i128 {
                let in_shadow = proj.contains(&[x0]);
                let has_lift = (-6..=6i128).any(|x1| s.contains(&[x0, x1]));
                // Lifting implies shadow membership always; the converse can
                // fail only on integer-gap cases, which normalize_ineq's
                // constant-floored rows make rare — require exactness when
                // the shadow is a single-variable interval system (it is
                // here).
                if has_lift && !in_shadow {
                    return Err(format!("x0={x0} lifts but not in shadow"));
                }
            }
            Ok(())
        },
    );
}

/// Emptiness agrees with brute-force search on a bounded box.
#[test]
fn emptiness_matches_enumeration() {
    check(
        &Config::with_cases(64).from_env(),
        "emptiness_matches_enumeration",
        |rng| gen_rows(rng, 2, 4),
        shrink_rows,
        |rows| {
            let mut s = to_set(rows, 2);
            for d in 0..2 {
                let mut lo = vec![0i128; 3];
                lo[d] = 1;
                lo[2] = 4;
                s.add_ineq(lo);
                let mut hi = vec![0i128; 3];
                hi[d] = -1;
                hi[2] = 4;
                s.add_ineq(hi);
            }
            let any = (-4..=4i128).any(|x| (-4..=4i128).any(|y| s.contains(&[x, y])));
            if s.is_empty() != any {
                Ok(())
            } else {
                Err(format!(
                    "is_empty={} but enumeration found point: {}",
                    s.is_empty(),
                    any
                ))
            }
        },
    );
}

/// remove_redundant never changes the integer point set.
#[test]
fn redundancy_removal_preserves_set() {
    check(
        &Config::with_cases(64).from_env(),
        "redundancy_removal_preserves_set",
        |rng| gen_rows(rng, 2, 4),
        shrink_rows,
        |rows| {
            let s0 = to_set(rows, 2);
            let mut s = s0.clone();
            s.remove_redundant();
            for x in -5..=5i128 {
                for y in -5..=5i128 {
                    if s0.contains(&[x, y]) != s.contains(&[x, y]) {
                        return Err(format!("membership of ({x},{y}) changed"));
                    }
                }
            }
            Ok(())
        },
    );
}

/// The lexmin solver returns a feasible point that no enumerated point
/// precedes lexicographically.
#[test]
fn lexmin_is_minimal_feasible() {
    check(
        &Config::with_cases(64).from_env(),
        "lexmin_is_minimal_feasible",
        |rng| gen_rows(rng, 2, 3),
        shrink_rows,
        |rows| {
            let mut p = IlpProblem::new(2);
            for r in rows {
                p.add_ineq(r.iter().map(|&v| v as i128).collect());
            }
            // Box so both solver (trivially) and enumeration agree.
            p.add_ineq(vec![-1, 0, 6]);
            p.add_ineq(vec![0, -1, 6]);
            let sat = |x: i128, y: i128| {
                rows.iter()
                    .all(|r| r[0] as i128 * x + r[1] as i128 * y + r[2] as i128 >= 0)
                    && x <= 6
                    && y <= 6
            };
            let mut best: Option<(i128, i128)> = None;
            'outer: for x in 0..=6 {
                for y in 0..=6 {
                    if sat(x, y) {
                        best = Some((x, y));
                        break 'outer;
                    }
                }
            }
            let got = p.lexmin().map(|v| (v[0], v[1]));
            if got == best {
                Ok(())
            } else {
                Err(format!("lexmin {got:?} != enumerated {best:?}"))
            }
        },
    );
}
