//! Property tests for the polyhedral substrates: exact arithmetic,
//! Fourier–Motzkin projection, and the lexmin ILP solver.

use proptest::prelude::*;
use pluto_ilp::IlpProblem;
use pluto_linalg::Ratio;
use pluto_poly::ConstraintSet;

fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-30i64..=30, 1i64..=12).prop_map(|(n, d)| Ratio::new(n as i128, d as i128))
}

proptest! {
    /// Field axioms for the exact rational type.
    #[test]
    fn ratio_field_axioms(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Ratio::ZERO, a);
        prop_assert_eq!(a * Ratio::ONE, a);
        prop_assert_eq!(a - a, Ratio::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
    }

    /// floor/ceil bracket the rational value.
    #[test]
    fn ratio_floor_ceil(a in small_ratio()) {
        let f = Ratio::from(a.floor());
        let c = Ratio::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(a - f < Ratio::ONE);
        prop_assert!(c - a < Ratio::ONE);
    }
}

/// A random small constraint system over `dims` variables.
fn random_set(dims: usize) -> impl Strategy<Value = ConstraintSet> {
    let row = proptest::collection::vec(-3i64..=3, dims + 1);
    proptest::collection::vec(row, 1..5).prop_map(move |rows| {
        let mut s = ConstraintSet::new(dims);
        for r in rows {
            s.add_ineq(r.into_iter().map(|v| v as i128).collect());
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FM projection is sound: a point of the set projects into the
    /// projection (membership preserved).
    #[test]
    fn projection_preserves_membership(
        s in random_set(3),
        x in proptest::collection::vec(-5i64..=5, 3),
    ) {
        let p: Vec<i128> = x.iter().map(|&v| v as i128).collect();
        if s.contains(&p) {
            let proj = s.project_out(2, 1);
            prop_assert!(proj.contains(&p[..2]), "shadow must contain projections");
        }
    }

    /// FM projection is precise over the rationals: a point of the shadow
    /// lifts to some rational point; over a *bounded* integer box we check
    /// the stronger integer statement by enumeration.
    #[test]
    fn projection_shadow_points_lift(s0 in random_set(2)) {
        // Box the system so enumeration terminates.
        let mut s = s0;
        for d in 0..2 {
            let mut lo = vec![0i128; 3];
            lo[d] = 1;
            lo[2] = 6;
            s.add_ineq(lo); // x_d >= -6
            let mut hi = vec![0i128; 3];
            hi[d] = -1;
            hi[2] = 6;
            s.add_ineq(hi); // x_d <= 6
        }
        let proj = s.project_out(1, 1);
        for x0 in -6..=6i128 {
            let in_shadow = proj.contains(&[x0]);
            let has_lift = (-6..=6i128).any(|x1| s.contains(&[x0, x1]));
            // Lifting implies shadow membership always; the converse can
            // fail only on integer-gap cases, which normalize_ineq's
            // constant-floored rows make rare — require exactness when the
            // shadow is a single-variable interval system (it is here).
            if has_lift {
                prop_assert!(in_shadow, "x0={x0} lifts but not in shadow");
            }
        }
    }

    /// Emptiness agrees with brute-force search on a bounded box.
    #[test]
    fn emptiness_matches_enumeration(s0 in random_set(2)) {
        let mut s = s0;
        for d in 0..2 {
            let mut lo = vec![0i128; 3];
            lo[d] = 1;
            lo[2] = 4;
            s.add_ineq(lo);
            let mut hi = vec![0i128; 3];
            hi[d] = -1;
            hi[2] = 4;
            s.add_ineq(hi);
        }
        let any = (-4..=4i128).any(|x| (-4..=4i128).any(|y| s.contains(&[x, y])));
        prop_assert_eq!(!s.is_empty(), any);
    }

    /// remove_redundant never changes the integer point set.
    #[test]
    fn redundancy_removal_preserves_set(s0 in random_set(2)) {
        let mut s = s0.clone();
        s.remove_redundant();
        for x in -5..=5i128 {
            for y in -5..=5i128 {
                prop_assert_eq!(s0.contains(&[x, y]), s.contains(&[x, y]));
            }
        }
    }

    /// The lexmin solver returns a feasible point that no enumerated point
    /// precedes lexicographically.
    #[test]
    fn lexmin_is_minimal_feasible(
        rows in proptest::collection::vec(
            proptest::collection::vec(-3i64..=3, 3), 1..4),
    ) {
        let mut p = IlpProblem::new(2);
        for r in &rows {
            p.add_ineq(r.iter().map(|&v| v as i128).collect());
        }
        // Box so both solver (trivially) and enumeration agree.
        p.add_ineq(vec![-1, 0, 6]);
        p.add_ineq(vec![0, -1, 6]);
        let sat = |x: i128, y: i128| {
            rows.iter().all(|r| r[0] as i128 * x + r[1] as i128 * y + r[2] as i128 >= 0)
                && x <= 6 && y <= 6
        };
        let mut best: Option<(i128, i128)> = None;
        for x in 0..=6 {
            for y in 0..=6 {
                if sat(x, y) {
                    best = Some((x, y));
                    break;
                }
            }
            if best.is_some() {
                break;
            }
        }
        let got = p.lexmin().map(|v| (v[0], v[1]));
        prop_assert_eq!(got, best);
    }
}
