//! Integration tests: the Pluto search on every paper kernel.
//!
//! Checks (a) the search succeeds, (b) the resulting transformation is
//! exactly legal (lex-positive transformed dependences, verified by ILP),
//! and (c) the transformation matches the shape the paper reports
//! (Sec. 7): band structure, skews, fusion and parallelism.

use pluto::baselines::validate_legality;
use pluto::{find_transformation, Parallelism, PlutoOptions, RowKind};
use pluto_frontend::kernels;
use pluto_ir::analyze_dependences;

fn search(
    k: &kernels::Kernel,
) -> (
    pluto_ir::Program,
    Vec<pluto_ir::Dependence>,
    pluto::SearchResult,
) {
    let prog = k.program.clone();
    let deps = analyze_dependences(&prog, true);
    let res = find_transformation(&prog, &deps, &PlutoOptions::default())
        .unwrap_or_else(|e| panic!("{}: search failed: {e}", prog.name));
    (prog, deps, res)
}

#[test]
fn all_kernels_transform_legally() {
    for (name, k) in kernels::all() {
        let (prog, deps, res) = search(&k);
        let violations = validate_legality(&prog, &deps, &res.transform);
        assert!(
            violations.is_empty(),
            "{name}: illegal transformation: {violations:?}\n{}",
            res.transform.display(&prog)
        );
        // Every legality dep must be satisfied at some row.
        for (di, d) in deps.iter().enumerate() {
            if d.kind.constrains_legality() {
                assert!(
                    res.satisfied_at[di].is_some(),
                    "{name}: dep {di} unsatisfied"
                );
            }
        }
    }
}

#[test]
fn jacobi_matches_paper_shape() {
    let (prog, _deps, res) = search(&kernels::jacobi_1d_imperfect());
    let t = &res.transform;
    println!("{}", t.display(&prog));
    // Paper Fig. 3(e)/(f): one fully permutable band of width 2:
    //   S1: (t, 2t+i), S2: (t, 2t+j+1).
    assert_eq!(t.bands.len(), 1, "single band");
    assert_eq!(t.bands[0].width, 2, "both loops tilable");
    let s1 = &t.stmts[0].rows;
    let s2 = &t.stmts[1].rows;
    // Row 0: the time loop for both statements.
    assert_eq!(&s1[0][..2], &[1, 0], "S1 c1 = t");
    assert_eq!(&s2[0][..2], &[1, 0], "S2 c1 = t");
    // Row 1: space skewed by 2 w.r.t. time, S2 shifted by one.
    assert_eq!(&s1[1][..2], &[2, 1], "S1 c2 = 2t + i");
    assert_eq!(&s2[1][..2], &[2, 1], "S2 c2 = 2t + j + 1");
    let c0_s1 = s1[1][4];
    let c0_s2 = s2[1][4];
    assert_eq!(c0_s2 - c0_s1, 1, "relative shift of S2 by one");
}

#[test]
fn lu_matches_paper_shape() {
    let (prog, _deps, res) = search(&kernels::lu());
    let t = &res.transform;
    println!("{}", t.display(&prog));
    // Paper Sec. 5.2: three tiling hyperplanes in one band; S1 (2-d) is
    // sunk into a 3-d fully permutable space:
    //   S1: (k, j, k),  S2: (k, j, i).
    assert_eq!(t.bands.len(), 1);
    assert_eq!(t.bands[0].width, 3);
    let s1 = &t.stmts[0].rows;
    let s2 = &t.stmts[1].rows;
    assert_eq!(&s1[0][..2], &[1, 0]);
    assert_eq!(&s2[0][..3], &[1, 0, 0]);
    // The two remaining S2 rows must cover i and j (order may vary).
    let r1: Vec<_> = s2[1][..3].to_vec();
    let r2: Vec<_> = s2[2][..3].to_vec();
    let covers = |r: &Vec<i128>, v: [i128; 3]| r == &v;
    assert!(
        (covers(&r1, [0, 0, 1]) && covers(&r2, [0, 1, 0]))
            || (covers(&r1, [0, 1, 0]) && covers(&r2, [0, 0, 1])),
        "S2 rows scan i and j: {r1:?} {r2:?}"
    );
}

#[test]
fn seidel_matches_paper_shape() {
    let (prog, _deps, res) = search(&kernels::seidel_2d());
    let t = &res.transform;
    println!("{}", t.display(&prog));
    // Paper Sec. 7: both space dimensions are skewed w.r.t. time and all
    // three dimensions become tilable (one permutable band of width 3 with
    // two degrees of pipelined parallelism inside). The paper reports
    // skew factors (1, 2); our lexmin finds the equally legal (1, 1)
    // variant (t, t+i, t+j), which scores *better* under the paper's own
    // bounding objective (max transformed dependence distance 2 vs 3) —
    // the published transform is one of several cost-equivalent optima.
    assert_eq!(t.bands.len(), 1);
    assert_eq!(t.bands[0].width, 3);
    let s = &t.stmts[0].rows;
    assert_eq!(&s[0][..3], &[1, 0, 0], "c1 = t");
    assert_eq!(&s[1][..3], &[1, 1, 0], "c2 = t + i");
    let c3 = &s[2][..3];
    assert!(
        c3 == [1, 0, 1] || c3 == [2, 1, 1] || c3 == [2, 0, 1],
        "c3 skews j w.r.t. time, got {c3:?}"
    );
}

#[test]
fn mvt_fuses_with_permutation() {
    let (prog, deps, res) = search(&kernels::mvt());
    let t = &res.transform;
    println!("{}", t.display(&prog));
    // Paper Sec. 7 (Fig. 11/12): the cost function fuses the first MV with
    // the *permuted* second MV so the input dependence distance on `a`
    // becomes 0 on both c1 and c2: S1 (i,j) with S2 (j,i). No scalar
    // (fission) dimension should be needed.
    assert!(
        t.rows.iter().all(|r| r.kind == RowKind::Loop),
        "MVs stay fused"
    );
    let s1 = &t.stmts[0].rows;
    let s2 = &t.stmts[1].rows;
    assert_eq!(&s1[0][..2], &[1, 0], "S1 c1 = i");
    assert_eq!(&s2[0][..2], &[0, 1], "S2 c1 = j (permuted)");
    assert_eq!(&s1[1][..2], &[0, 1], "S1 c2 = j");
    assert_eq!(&s2[1][..2], &[1, 0], "S2 c2 = i (permuted)");
    // Input dependence on `a` across statements has zero distance now; the
    // fused loops each carry a dependence => pipelined parallelism only.
    let inter_input = deps
        .iter()
        .position(|d| d.src != d.dst && d.kind == pluto_ir::DepKind::Input)
        .expect("inter-statement input dep");
    let _ = inter_input;
    assert!(
        t.rows.iter().any(|r| r.par == Parallelism::Sequential),
        "fusion trades away sync-free parallelism"
    );
}

#[test]
fn fdtd_finds_permutable_band() {
    let (prog, _deps, res) = search(&kernels::fdtd_2d());
    let t = &res.transform;
    println!("{}", t.display(&prog));
    // Paper Sec. 7: "Our transformation framework finds three tiling
    // hyperplanes (all in one band - fully permutable). The transformation
    // represents a combination of shifting, fusion and time skewing."
    let max_band = t.bands.iter().map(|b| b.width).max().unwrap();
    assert!(
        max_band >= 3,
        "expected a width-3 permutable band, got bands {:?}",
        t.bands
    );
}

#[test]
fn matmul_all_parallel_space_loops() {
    let (prog, _deps, res) = search(&kernels::matmul());
    let t = &res.transform;
    println!("{}", t.display(&prog));
    assert_eq!(t.bands.len(), 1);
    assert_eq!(t.bands[0].width, 3);
    // i and j loops parallel, k (reduction) sequential.
    let pars: Vec<_> = t.rows.iter().map(|r| r.par).collect();
    assert_eq!(
        pars.iter().filter(|p| **p == Parallelism::Parallel).count(),
        2,
        "{pars:?}"
    );
}

#[test]
fn sor_pipelined_band() {
    let (prog, _deps, res) = search(&kernels::sor_2d());
    let t = &res.transform;
    println!("{}", t.display(&prog));
    // Fig. 4: hyperplanes (1,0) and (0,1), both carrying dependences.
    assert_eq!(t.bands.len(), 1);
    assert_eq!(t.bands[0].width, 2);
    let s = &t.stmts[0].rows;
    assert_eq!(&s[0][..2], &[1, 0]);
    assert_eq!(&s[1][..2], &[0, 1]);
    assert!(t.rows.iter().all(|r| r.par == Parallelism::Sequential));
}

#[test]
fn transform_time_budget() {
    // Paper Sec. 7: "Our transformation framework itself runs quite fast —
    // within a fraction of a second for all benchmarks considered here."
    let t0 = std::time::Instant::now();
    for (_, k) in kernels::all() {
        let deps = analyze_dependences(&k.program, true);
        let _ = find_transformation(&k.program, &deps, &PlutoOptions::default()).unwrap();
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 60,
        "transformations took {elapsed:?} — far beyond interactive use"
    );
}

#[test]
fn explain_reports_paper_structure_for_lu() {
    let (prog, deps, res) = search(&kernels::lu());
    let report = pluto::explain(&prog, &deps, &res);
    // One width-3 band, the k-carried dependences satisfied at c1, and the
    // inner rows carrying the rest (pipelined structure).
    assert!(report.contains("band 0: rows c1..c3 (width 3"), "{report}");
    assert!(report.contains("satisfied at c1"), "{report}");
    assert!(report.contains("flow"), "{report}");
}
