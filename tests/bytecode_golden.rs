//! Golden tests for the bytecode translation validator (PL008–PL013):
//! every library kernel's compiled form must verify clean against its
//! polyhedral source, and hand-corrupted bytecode — a bumped stride, an
//! out-of-range base, an off-by-one chunk boundary, a truncated or
//! reordered tape, a force-parallelized reduction — must be rejected
//! with the expected code and a concrete witness.

use pluto::{Optimizer, Parallelism};
use pluto_analyze::bytecode::{self, BytecodeInput};
use pluto_analyze::{Code, Diagnostic, Severity};
use pluto_codegen::{generate, original_schedule};
use pluto_frontend::kernels;
use pluto_machine::{chunk_plan, compile_kernel_with_extents, BodyOp, CompiledKernel};
use pluto_repro::pipeline::{compile_audited_exec, ExecShape};

fn error_codes(diags: &[Diagnostic]) -> Vec<Code> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

fn render(diags: &[Diagnostic]) -> String {
    pluto_analyze::render_text(diags)
}

/// Compiles kernel `k` end to end (optimize → generate → lower) and
/// returns everything the verifier needs.
fn build(
    k: &kernels::Kernel,
    opt: Optimizer,
    params: &[i64],
) -> (pluto::Transformation, pluto_codegen::Ast, CompiledKernel) {
    let optimized = opt.optimize(&k.program).expect("optimize");
    let t = optimized.result.transform;
    let ast = generate(&k.program, &t);
    let ck = compile_kernel_with_extents(&k.program, &ast, params, &(k.extents)(params));
    (t, ast, ck)
}

/// Every library kernel, tiled and wavefronted, must translation-validate
/// clean: the folded accesses, flat bounds, dispatch partitions, and body
/// tapes of the compiled kernel all re-prove against the polyhedral
/// source. (Info-severity stride lints are allowed; errors are not.)
#[test]
fn library_kernels_bytecode_validate_clean() {
    for (name, k) in kernels::all() {
        let params = vec![16i64; k.program.num_params()];
        let (t, ast, ck) = build(&k, Optimizer::new().tile_size(8), &params);
        let diags = bytecode::check(&BytecodeInput {
            program: &k.program,
            transform: &t,
            ast: &ast,
            kernel: &ck,
        });
        assert!(
            error_codes(&diags).is_empty(),
            "{name}: compiled kernel failed translation validation:\n{}",
            render(&diags)
        );
    }
}

/// The audited pipeline entry point: handing `compile_audited_exec` a
/// concrete execution shape must run the bytecode verifier (visible as
/// the `analyze/bytecode` phase in the profile) and still come out clean
/// on a known-good kernel.
#[test]
fn compile_audited_exec_runs_the_bytecode_verifier() {
    let k = kernels::seidel_2d();
    let params = vec![6i64, 24];
    let extents = (k.extents)(&params);
    let compiled = compile_audited_exec(
        &k.program,
        Optimizer::new().tile_size(8).wavefront_degrees(2),
        None,
        Some(ExecShape {
            params: &params,
            extents: &extents,
        }),
    )
    .expect("optimize");
    assert!(
        compiled.is_clean(),
        "seidel-2d must be clean under the full audit:\n{}",
        render(&compiled.diagnostics)
    );
    assert!(
        compiled.profile.phase("analyze/bytecode").is_some(),
        "bytecode verification must be attributed to the analyze/bytecode span"
    );
    let accesses = compiled
        .profile
        .counters
        .iter()
        .find(|c| c.name == "analyze.bytecode_accesses")
        .map_or(0, |c| c.value);
    assert!(accesses > 0, "verifier must count re-expanded accesses");
}

/// Corrupting one stride coefficient of a compiled access is a
/// miscompile PL008 must pin down, naming both the re-expanded and the
/// compiled form.
#[test]
fn corrupted_stride_triggers_pl008() {
    let k = kernels::matmul();
    let prog = &k.program;
    let t = original_schedule(prog);
    let ast = generate(prog, &t);
    let params = [10i64];
    let mut ck = compile_kernel_with_extents(prog, &ast, &params, &(k.extents)(&params));
    ck.leaves[0].write.strides[0].1 += 1;
    let diags = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t,
        ast: &ast,
        kernel: &ck,
    });
    let d = diags
        .iter()
        .find(|d| d.code == Code::BytecodeDivergence)
        .unwrap_or_else(|| panic!("expected PL008, got:\n{}", render(&diags)));
    assert!(
        d.message.contains("re-expands to"),
        "PL008 must show both expansions: {}",
        d.message
    );

    // A desynced shape short-circuits to a single PL008 (the lockstep
    // walk would be meaningless).
    let mut ck2 = compile_kernel_with_extents(prog, &ast, &params, &(k.extents)(&params));
    ck2.num_stmts += 1;
    let diags2 = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t,
        ast: &ast,
        kernel: &ck2,
    });
    assert_eq!(
        error_codes(&diags2),
        vec![Code::BytecodeDivergence],
        "shape mismatch must yield exactly one PL008:\n{}",
        render(&diags2)
    );
}

/// Shifting a compiled base so the flattened offset can reach the array
/// length must be caught by the PL009 emptiness prover, with a witness
/// instance that actually overruns.
#[test]
fn shifted_base_triggers_pl009_with_witness() {
    let k = kernels::matmul();
    let prog = &k.program;
    let t = original_schedule(prog);
    let ast = generate(prog, &t);
    let params = [10i64];
    let mut ck = compile_kernel_with_extents(prog, &ast, &params, &(k.extents)(&params));
    // C is 10×10 (len 100); base 1 pushes instance (i=9, j=9) to
    // offset 100 — exactly one past the end.
    ck.leaves[0].write.base += 1;
    let diags = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t,
        ast: &ast,
        kernel: &ck,
    });
    let oob = diags
        .iter()
        .find(|d| d.code == Code::BytecodeOob)
        .unwrap_or_else(|| panic!("expected PL009, got:\n{}", render(&diags)));
    assert!(
        !oob.witness.is_empty(),
        "PL009 must carry a witness instance: {}",
        oob.message
    );
    // The witness must genuinely overrun: offset = 1 + 10·i + j >= 100.
    let get = |name: &str| {
        oob.witness
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("witness lacks {name}: {:?}", oob.witness))
    };
    assert!(1 + 10 * get("i") + get("j") >= 100, "{:?}", oob.witness);
}

/// An off-by-one chunk boundary breaks the disjoint-exact-cover
/// invariant: `check_cover` must reject it naming the dropped item, and
/// accept the executor's real plans across the whole envelope.
#[test]
fn off_by_one_chunk_boundary_triggers_pl010() {
    let mut plan = chunk_plan(10, 3);
    assert!(plan.len() > 1, "need at least two chunks to corrupt");
    assert!(
        bytecode::check_cover(10, &plan).is_none(),
        "real plan is sound"
    );
    plan[1].0 += 1; // chunk 1 now starts one item late: an item is dropped
    let d = bytecode::check_cover(10, &plan).expect("corrupted plan must be rejected");
    assert_eq!(d.code, Code::ChunkCover);
    assert!(
        d.witness.iter().any(|(n, _)| n == "item"),
        "PL010 must name the uncovered item: {:?}",
        d.witness
    );

    // Overlap and escape are rejected too.
    let mut dup = chunk_plan(10, 3);
    dup[1].0 -= 1;
    assert!(bytecode::check_cover(10, &dup).is_some(), "double cover");
    let mut esc = chunk_plan(10, 3);
    esc.last_mut().unwrap().1 += 1;
    assert!(bytecode::check_cover(10, &esc).is_some(), "escaping chunk");
}

/// Force-marking matmul's reduction (k) loop parallel puts same-cell
/// writes into different work items of one dispatch — PL011 must find
/// the overlapping pair from the compiled strides alone.
#[test]
fn forced_parallel_reduction_triggers_pl011() {
    let k = kernels::matmul();
    let prog = &k.program;
    let mut t = original_schedule(prog);
    // Rows of the 2d+1 schedule: 0 scalar, 1 = i, 2 scalar, 3 = j,
    // 4 scalar, 5 = k. The k loop carries the C[i][j] reduction.
    t.rows[5].par = Parallelism::Parallel;
    for sp in t.stmt_par.iter_mut() {
        sp[5] = Parallelism::Parallel;
    }
    let ast = generate(prog, &t);
    let params = [10i64];
    let ck = compile_kernel_with_extents(prog, &ast, &params, &(k.extents)(&params));
    let diags = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t,
        ast: &ast,
        kernel: &ck,
    });
    let race = diags
        .iter()
        .find(|d| d.code == Code::ChunkRace)
        .unwrap_or_else(|| panic!("expected PL011, got:\n{}", render(&diags)));
    assert!(
        !race.witness.is_empty(),
        "PL011 must carry a witness instance pair: {}",
        race.message
    );
    assert!(
        race.message.contains('C'),
        "PL011 must name the racing array: {}",
        race.message
    );

    // Control: the same kernel with the genuinely parallel i loop marked
    // must pass — different i means a different row of C.
    let mut t_ok = original_schedule(prog);
    t_ok.rows[1].par = Parallelism::Parallel;
    for sp in t_ok.stmt_par.iter_mut() {
        sp[1] = Parallelism::Parallel;
    }
    let ast_ok = generate(prog, &t_ok);
    let ck_ok = compile_kernel_with_extents(prog, &ast_ok, &params, &(k.extents)(&params));
    let diags_ok = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t_ok,
        ast: &ast_ok,
        kernel: &ck_ok,
    });
    assert!(
        !diags_ok.iter().any(|d| d.code == Code::ChunkRace),
        "i-parallel matmul must be chunk-race free:\n{}",
        render(&diags_ok)
    );
}

/// A truncated tape (malformed postfix) and a reordered tape (well-formed
/// but computing a different expression) must both trigger PL012.
#[test]
fn corrupted_tape_triggers_pl012() {
    let k = kernels::matmul();
    let prog = &k.program;
    let t = original_schedule(prog);
    let ast = generate(prog, &t);
    let params = [10i64];
    let fresh = || compile_kernel_with_extents(prog, &ast, &params, &(k.extents)(&params));

    let mut truncated = fresh();
    truncated.leaves[0].body.pop();
    let diags = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t,
        ast: &ast,
        kernel: &truncated,
    });
    let d = diags
        .iter()
        .find(|d| d.code == Code::TapeDivergence)
        .unwrap_or_else(|| panic!("expected PL012 for truncation, got:\n{}", render(&diags)));
    assert!(
        d.message.contains("malformed"),
        "truncation is a malformed tape: {}",
        d.message
    );

    // matmul's body is C + A·B → tape [.., Mul, Add]; swapping the final
    // Add to Sub stays well-formed but computes C − A·B.
    let mut reordered = fresh();
    let last = reordered.leaves[0].body.len() - 1;
    assert!(matches!(reordered.leaves[0].body[last], BodyOp::Add));
    reordered.leaves[0].body[last] = BodyOp::Sub;
    let diags2 = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t,
        ast: &ast,
        kernel: &reordered,
    });
    assert!(
        diags2.iter().any(|d| d.code == Code::TapeDivergence),
        "expected PL012 for the reordered tape, got:\n{}",
        render(&diags2)
    );
}

/// A transposed copy (`a[j][i]` scanned with `j` innermost) leaves the
/// innermost loop without any stride-1 access — the PL013 lint must flag
/// it with the per-array stride vectors, at Info severity.
#[test]
fn transposed_access_triggers_pl013_stride_lint() {
    let src = "
      params N;
      array a[N][N]; array b[N][N];
      for (i = 0; i <= N - 1; i++)
        for (j = 0; j <= N - 1; j++)
          a[j][i] = b[j][i];
    ";
    let unit = pluto_frontend::parse_unit(src).expect("parse");
    let prog = &unit.program;
    let t = original_schedule(prog);
    let ast = generate(prog, &t);
    let params = [8i64];
    let extents = unit.try_extents(&params).expect("extents");
    let ck = compile_kernel_with_extents(prog, &ast, &params, &extents);
    let diags = bytecode::check(&BytecodeInput {
        program: prog,
        transform: &t,
        ast: &ast,
        kernel: &ck,
    });
    let lint = diags
        .iter()
        .find(|d| d.code == Code::NonUnitStride)
        .unwrap_or_else(|| panic!("expected PL013, got:\n{}", render(&diags)));
    assert_eq!(lint.severity, Severity::Info, "PL013 is informational");
    assert!(
        lint.message.contains("a:") && lint.message.contains("b:"),
        "PL013 must list per-array strides: {}",
        lint.message
    );
    assert!(
        pluto_analyze::is_clean(&diags),
        "the lint must not fail the audit:\n{}",
        render(&diags)
    );
}

/// Schema compatibility: every stable code — including the new
/// PL008–PL013 block — renders into valid `pluto-analysis/1` JSON with
/// its full identifier.
#[test]
fn render_json_covers_all_codes() {
    let codes = [
        (Code::Race, "PL001-race"),
        (Code::Oob, "PL002-oob"),
        (Code::EmptyLoop, "PL003-empty-loop"),
        (Code::RedundantGuard, "PL004-redundant-guard"),
        (Code::OneTripParallel, "PL005-one-trip-parallel"),
        (Code::ShadowedBinding, "PL006-shadowed-binding"),
        (Code::LedgerDivergence, "PL007-ledger-divergence"),
        (Code::BytecodeDivergence, "PL008-bytecode-divergence"),
        (Code::BytecodeOob, "PL009-bytecode-oob"),
        (Code::ChunkCover, "PL010-chunk-cover"),
        (Code::ChunkRace, "PL011-chunk-race"),
        (Code::TapeDivergence, "PL012-tape-divergence"),
        (Code::NonUnitStride, "PL013-nonunit-stride"),
    ];
    let diags: Vec<Diagnostic> = codes
        .iter()
        .map(|&(c, _)| Diagnostic::new(c, "p".into(), "m".into()))
        .collect();
    for (code, s) in codes {
        assert_eq!(code.as_str(), s, "stable identifier changed");
    }
    let doc = pluto_analyze::render_json(&diags);
    pluto_obs::json::parse(&doc).expect("render_json must emit valid JSON");
    for (_, s) in codes {
        assert!(doc.contains(s), "JSON document must carry {s}");
    }
}
