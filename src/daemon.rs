//! The `plutod` compile service: many compiles, one process, aggregate
//! observability (ROADMAP item 3, DESIGN.md §12).
//!
//! [`pluto_schedule`](crate::pluto_schedule) made the compiler
//! re-entrant — every compile runs under a private
//! [`ObsSession`]. This module is the layer
//! above: a [`Daemon`] that serves newline-delimited JSON requests
//! (`pluto-rpc/1`), one compile session per request, and merges each
//! finished session's [`Snapshot`] into a process-wide
//! [`ServiceMetrics`] aggregate. Three methods:
//!
//! * `compile` — affine C source in, transformed OpenMP C out, plus the
//!   request's own `pluto-profile/3` and `pluto-explain/1` documents;
//! * `stats` — the live `pluto-stats/1` aggregate: request/error/cache
//!   totals, summed counters, merged histograms with p50/p90/p99, and a
//!   rolling whole-compile latency histogram. By construction every
//!   total is *exactly* the sum over the served per-request profiles
//!   (the aggregation invariant — see [`pluto_obs::aggregate`]);
//! * `health` — liveness, uptime, and thread-pool state.
//!
//! Every request also produces one single-line `pluto-log/1` document
//! (request id, kernel FNV-1a hash, cache hit/miss, phase breakdown,
//! top counters) which the `plutod` binary prints to stderr. Schemas
//! for all three documents are pinned in PERFORMANCE.md §5.6–5.7 and
//! `tests/daemon_golden.rs`.
//!
//! # The schedule cache
//!
//! The service path the paper's Sec. 7 practicality argument cares
//! about — many users compiling the same few stencils — is served by a
//! content-addressed schedule cache with two probe levels:
//!
//! 1. an exact source+options memo, hit without parsing;
//! 2. a content key over the *canonicalized dependence polyhedra*
//!    (every [`Dependence`] reduced to `src/dst/kind/level` plus its
//!    polyhedron's [`poly::cache::key_of`](pluto_poly::cache::key_of)
//!    canonical form — row order and equality-row sign erased), the
//!    program structure, and the options fingerprint. Two sources that
//!    parse to the same computation reuse one schedule, and a colliding
//!    digest cannot serve wrong code because the canonical forms
//!    themselves are the key.
//!
//! Capacity is bounded ([`Daemon::with_cache_cap`]); at the cap the
//! oldest entry is evicted FIFO and counted. Hits, misses, and
//! evictions are visible per-request in `pluto-log/1` and in aggregate
//! in `pluto-stats/1`.

use pluto::{explain_json, FusionPolicy, Optimizer, PlutoOptions};
use pluto_codegen::{emit_c, generate};
use pluto_frontend::parse_unit;
use pluto_ir::{analyze_dependences_with, DepAnalysisOptions, Dependence, Program};
use pluto_linalg::Int;
use pluto_obs::aggregate::{fnv1a, ServiceMetrics, Snapshot};
use pluto_obs::json::{self, Json};
use pluto_obs::{ObsSession, Profile};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bound on resident schedule-cache entries (each holds one
/// kernel's generated C and explain report — a few KiB).
pub const DEFAULT_CACHE_CAP: usize = 1024;

/// The compile options a `pluto-rpc/1` request may set — the subset of
/// `plutoc`'s flags that changes generated code, under the same names
/// (`{"tile": 16, "nofuse": true}` ≙ `plutoc --tile 16 --nofuse`).
/// Requests with the same canonical [`fingerprint`](Self::fingerprint)
/// share schedule-cache entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Tile size on every dimension of every tiled band (`--tile`).
    pub tile: Int,
    /// Optional second tiling level factor (`--l2`).
    pub l2: Option<Int>,
    /// Tile permutable bands (`--notile` clears it).
    pub tiling: bool,
    /// Extract coarse-grained parallelism (`--noparallel` clears it).
    pub parallel: bool,
    /// Fusion policy (`--nofuse` selects [`FusionPolicy::NoFuse`]).
    pub fuse: FusionPolicy,
    /// Model read-after-read reuse in the cost function (`--noinputdeps`
    /// clears it).
    pub input_deps: bool,
    /// Degrees of pipelined parallelism (`--wavefront`).
    pub wavefront: usize,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            tile: 32,
            l2: None,
            tiling: true,
            parallel: true,
            fuse: FusionPolicy::Smart,
            input_deps: true,
            wavefront: 1,
        }
    }
}

impl CompileOptions {
    /// Reads options from a request's `options` object (`None` — or an
    /// absent field — means all defaults).
    ///
    /// # Errors
    /// Unknown keys and ill-typed values are errors: a service must not
    /// silently ignore an option the client believes it set.
    pub fn from_json(options: Option<&Json>) -> Result<CompileOptions, String> {
        let mut opts = CompileOptions::default();
        let Some(v) = options else { return Ok(opts) };
        if v.is_null() {
            return Ok(opts);
        }
        let Json::Object(fields) = v else {
            return Err("`options` must be an object".to_string());
        };
        for (key, value) in fields {
            match key.as_str() {
                "tile" => {
                    opts.tile = value
                        .as_u64()
                        .filter(|&t| t >= 1)
                        .ok_or("`tile` must be a positive integer")?
                        as Int;
                }
                "l2" => {
                    opts.l2 = Some(
                        value
                            .as_u64()
                            .filter(|&f| f >= 1)
                            .ok_or("`l2` must be a positive integer")?
                            as Int,
                    );
                }
                "notile" => opts.tiling = !read_bool(value, "notile")?,
                "noparallel" => opts.parallel = !read_bool(value, "noparallel")?,
                "nofuse" => {
                    if read_bool(value, "nofuse")? {
                        opts.fuse = FusionPolicy::NoFuse;
                    }
                }
                "noinputdeps" => opts.input_deps = !read_bool(value, "noinputdeps")?,
                "wavefront" => {
                    opts.wavefront = value
                        .as_u64()
                        .filter(|&m| m >= 1)
                        .ok_or("`wavefront` must be a positive integer")?
                        as usize;
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The canonical form of these options — one component of every
    /// schedule-cache key. Two requests share cached schedules iff their
    /// fingerprints (and content) match.
    pub fn fingerprint(&self) -> String {
        format!(
            "tile={};l2={:?};tiling={};parallel={};fuse={:?};input_deps={};wavefront={}",
            self.tile,
            self.l2,
            self.tiling,
            self.parallel,
            self.fuse,
            self.input_deps,
            self.wavefront
        )
    }

    /// The equivalent `plutoc` optimizer configuration. Dependence
    /// analysis runs single-threaded with pruning on: the service keeps
    /// per-request counters deterministic (a racing analysis team makes
    /// `ilp.cache_*` scheduling-dependent), and generated code is
    /// bit-identical to `plutoc --threads 1` on the same source.
    pub fn optimizer(&self) -> Optimizer {
        let mut opt = Optimizer::new()
            .tile_size(self.tile)
            .tiling(self.tiling)
            .parallel(self.parallel)
            .wavefront_degrees(self.wavefront)
            .dep_pruning(true)
            .dep_threads(1)
            .search_options(PlutoOptions {
                use_input_deps: self.input_deps,
                fuse: self.fuse,
                warm_start: true,
                ..PlutoOptions::default()
            });
        if let Some(f) = self.l2 {
            opt = opt.second_level(f);
        }
        opt
    }

    /// The dependence-analysis options matching [`optimizer`]
    /// (the daemon analyzes before the search so it can probe the
    /// content-addressed cache on the result).
    ///
    /// [`optimizer`]: Self::optimizer
    fn dep_options(&self) -> DepAnalysisOptions {
        DepAnalysisOptions {
            include_input: self.input_deps,
            prune: true,
            threads: 1,
        }
    }
}

fn read_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.as_bool().ok_or(format!("`{key}` must be a boolean"))
}

/// One dependence reduced to its canonical identity: endpoints, kind,
/// carry level, and the polyhedron's canonical form (row order and
/// equality-row sign erased by
/// [`poly::cache::key_of`](pluto_poly::cache::key_of)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DepKey {
    src: usize,
    dst: usize,
    kind: &'static str,
    level: usize,
    poly: pluto_poly::cache::Key,
}

/// The content address of one schedule: canonicalized dependence
/// polyhedra + program structure + options fingerprint. The full
/// canonical content is the key (no digests — a collision could serve
/// wrong code), mirroring `poly::cache`'s keying discipline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContentKey {
    options: String,
    program: String,
    deps: Vec<DepKey>,
}

impl ContentKey {
    /// Computes the content address of a compile about to run: the
    /// analyzed dependences in analysis order (each canonicalized), the
    /// program's full structural fingerprint, and the options
    /// fingerprint.
    fn of(prog: &Program, deps: &[Dependence], options_fp: &str) -> ContentKey {
        ContentKey {
            options: options_fp.to_string(),
            program: format!("{prog:?}"),
            deps: deps
                .iter()
                .map(|d| DepKey {
                    src: d.src,
                    dst: d.dst,
                    kind: match d.kind {
                        pluto_ir::DepKind::Flow => "flow",
                        pluto_ir::DepKind::Anti => "anti",
                        pluto_ir::DepKind::Output => "output",
                        pluto_ir::DepKind::Input => "input",
                    },
                    level: d.level,
                    poly: pluto_poly::cache::key_of(&d.poly),
                })
                .collect(),
        }
    }
}

/// One cached schedule: everything a repeat request needs that does not
/// depend on the request itself.
#[derive(Debug)]
struct Entry {
    kernel: String,
    code: String,
    /// The `pluto-explain/1` document, already compacted to one line.
    explain: String,
}

/// The bounded two-level schedule cache (interior of
/// [`Daemon::cache`]).
#[derive(Debug)]
struct ScheduleCache {
    cap: usize,
    /// Content address → schedule.
    by_content: HashMap<Arc<ContentKey>, Arc<Entry>>,
    /// Exact `(source, options fingerprint)` memo → content address;
    /// the fast path that skips parsing and dependence analysis.
    by_source: HashMap<(String, String), Arc<ContentKey>>,
    /// Content keys in insertion order — the FIFO eviction queue.
    order: VecDeque<Arc<ContentKey>>,
}

impl ScheduleCache {
    fn new(cap: usize) -> ScheduleCache {
        ScheduleCache {
            cap: cap.max(1),
            by_content: HashMap::new(),
            by_source: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn lookup_source(&mut self, key: &(String, String)) -> Option<Arc<Entry>> {
        let content = self.by_source.get(key)?;
        match self.by_content.get(content) {
            Some(entry) => Some(entry.clone()),
            None => {
                // The memo outlived its evicted entry; drop it.
                self.by_source.remove(key);
                None
            }
        }
    }

    fn lookup_content(&self, key: &ContentKey) -> Option<Arc<Entry>> {
        self.by_content.get(key).cloned()
    }

    fn memoize_source(&mut self, source_key: (String, String), content: &ContentKey) {
        if let Some((resident, _)) = self.by_content.get_key_value(content) {
            self.by_source.insert(source_key, resident.clone());
        }
    }

    /// Inserts a fresh schedule under both levels; returns how many
    /// entries were evicted to stay within `cap`.
    fn insert(
        &mut self,
        source_key: (String, String),
        content: ContentKey,
        entry: Arc<Entry>,
    ) -> u64 {
        // Two concurrent first-compiles of the same content race here;
        // keep the entry that landed first and just add the memo.
        if self.by_content.contains_key(&content) {
            self.memoize_source(source_key, &content);
            return 0;
        }
        let mut evicted = 0u64;
        while self.by_content.len() >= self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if self.by_content.remove(&oldest).is_some() {
                self.by_source.retain(|_, c| **c != *oldest);
                evicted += 1;
            }
        }
        let content = Arc::new(content);
        self.order.push_back(content.clone());
        self.by_source.insert(source_key, content.clone());
        self.by_content.insert(content, entry);
        evicted
    }

    fn len(&self) -> usize {
        self.by_content.len()
    }
}

/// A handled request: the one-line `pluto-rpc/1` response (for the
/// client) and the one-line `pluto-log/1` record (for stderr).
#[derive(Debug, Clone)]
pub struct Handled {
    /// Single-line JSON response, no trailing newline.
    pub response: String,
    /// Single-line JSON log record, no trailing newline.
    pub log: String,
}

/// The compile service: shared, thread-safe state behind `plutod`.
/// Transport-agnostic — [`handle_line`](Daemon::handle_line) maps one
/// request line to one response line, whatever carried it (stdin, a
/// Unix socket, or a test driving the daemon in-process).
#[derive(Debug)]
pub struct Daemon {
    metrics: ServiceMetrics,
    cache: Mutex<ScheduleCache>,
    started: Instant,
}

impl Default for Daemon {
    fn default() -> Daemon {
        Daemon::new()
    }
}

/// What one `compile` produced, before it is shaped into response and
/// log documents.
struct Compiled {
    entry: Arc<Entry>,
    cache_hit: bool,
}

impl Daemon {
    /// A daemon with the default schedule-cache capacity.
    pub fn new() -> Daemon {
        Daemon::with_cache_cap(DEFAULT_CACHE_CAP)
    }

    /// A daemon whose schedule cache holds at most `cap` entries
    /// (minimum 1); the oldest entry is evicted FIFO at the bound.
    pub fn with_cache_cap(cap: usize) -> Daemon {
        Daemon {
            metrics: ServiceMetrics::new(),
            cache: Mutex::new(ScheduleCache::new(cap)),
            started: Instant::now(),
        }
    }

    /// The live service aggregate (the state behind `stats`).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Resident schedule-cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("schedule cache poisoned").len()
    }

    /// Handles one `pluto-rpc/1` request line, producing one response
    /// line and one `pluto-log/1` record. Malformed requests produce
    /// `"ok": false` responses, never panics — a service stays up.
    /// Safe to call from any number of threads at once.
    pub fn handle_line(&self, line: &str) -> Handled {
        let start = Instant::now();
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return self.finish(
                    Json::Null,
                    "invalid",
                    start,
                    Err(format!("bad JSON: {e}")),
                    None,
                )
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let method = request
            .get("method")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        match method.as_str() {
            "compile" => self.handle_compile(id, &request, start),
            "stats" => {
                let doc = self
                    .metrics
                    .stats_json(self.cache_len(), self.cache.lock().unwrap().cap);
                let stats = json::parse(&doc).expect("stats_json emits valid JSON");
                self.finish(id, "stats", start, Ok(stats), None)
            }
            "health" => {
                let health = obj(vec![
                    ("status", Json::String("ok".to_string())),
                    ("uptime_ns", num(self.started.elapsed().as_nanos() as u64)),
                    ("requests", num(self.metrics.requests())),
                    ("errors", num(self.metrics.errors())),
                    ("pool_workers", num(pluto_pool::spawn_count() as u64)),
                    ("cache_entries", num(self.cache_len() as u64)),
                ]);
                self.finish(id, "health", start, Ok(health), None)
            }
            "" => self.finish(
                id,
                "invalid",
                start,
                Err("missing `method`".to_string()),
                None,
            ),
            other => self.finish(
                id,
                other,
                start,
                Err(format!(
                    "unknown method `{other}` (expected compile|stats|health)"
                )),
                None,
            ),
        }
    }

    fn handle_compile(&self, id: Json, request: &Json, start: Instant) -> Handled {
        let Some(source) = request.get("source").and_then(Json::as_str) else {
            self.metrics.record_error();
            return self.finish(
                id,
                "compile",
                start,
                Err("compile expects a string `source`".to_string()),
                None,
            );
        };
        let options = match CompileOptions::from_json(request.get("options")) {
            Ok(o) => o,
            Err(e) => {
                self.metrics.record_error();
                return self.finish(id, "compile", start, Err(e), None);
            }
        };
        // Like plutoc's file-stem kernel label: requests may name the
        // kernel for logs/profiles; unnamed ones use the program's name.
        let label = request
            .get("kernel")
            .and_then(Json::as_str)
            .map(str::to_string);

        // This request's private observability context: every counter,
        // span, and histogram sample between here and `finish_profile`
        // belongs to this request alone.
        let obs = ObsSession::builder().profile().decisions().build();
        let guard = obs.install();
        let served = self.serve(&obs, source, &options);
        drop(guard);
        let profile = obs.finish_profile();

        match served {
            Ok(compiled) => {
                // The aggregation invariant lives here: the service
                // absorbs exactly the profile the client is handed.
                self.metrics.record(&Snapshot::of(&profile));
                if compiled.cache_hit {
                    self.metrics.record_cache_hit();
                } else {
                    self.metrics.record_cache_miss();
                }
                let detail = CompileDetail {
                    kernel: label.unwrap_or_else(|| compiled.entry.kernel.clone()),
                    source_fnv: fnv1a(source.as_bytes()),
                    cache_hit: compiled.cache_hit,
                    profile,
                    entry: compiled.entry,
                };
                self.finish(id, "compile", start, Ok(detail.result_json()), Some(detail))
            }
            Err(e) => {
                self.metrics.record_error();
                self.finish(id, "compile", start, Err(e), None)
            }
        }
    }

    /// The compile itself, under the caller's installed session: probe
    /// the source memo, else parse + analyze and probe the content
    /// address, else search + generate and populate both levels.
    fn serve(
        &self,
        obs: &ObsSession,
        source: &str,
        options: &CompileOptions,
    ) -> Result<Compiled, String> {
        let fp = options.fingerprint();
        let source_key = (source.to_string(), fp.clone());
        {
            let mut cache = self.cache.lock().expect("schedule cache poisoned");
            if let Some(entry) = cache.lookup_source(&source_key) {
                return Ok(Compiled {
                    entry,
                    cache_hit: true,
                });
            }
        }
        // parse_unit and generate open their own "parse"/"codegen"
        // spans; only dependence analysis needs a span here (its usual
        // "optimize/deps" parent is bypassed so the content probe can
        // run between analysis and search).
        let unit = parse_unit(source).map_err(|e| e.to_string())?;
        let prog = unit.program;
        let deps = {
            let _s = pluto_obs::span("deps");
            analyze_dependences_with(&prog, &options.dep_options())
        };
        let content = ContentKey::of(&prog, &deps, &fp);
        {
            let mut cache = self.cache.lock().expect("schedule cache poisoned");
            if let Some(entry) = cache.lookup_content(&content) {
                cache.memoize_source(source_key, &content);
                return Ok(Compiled {
                    entry,
                    cache_hit: true,
                });
            }
        }
        let optimized = options
            .optimizer()
            .optimize_with_deps(&prog, deps)
            .map_err(|e| format!("transformation failed: {e}"))?;
        let decisions = obs.take_decisions();
        let code = {
            let ast = generate(&prog, &optimized.result.transform);
            emit_c(&prog, &ast)
        };
        let explain = explain_json(
            &prog,
            &optimized.deps,
            &optimized.result,
            &decisions,
            Some(&prog.name),
        );
        let explain = json::parse(&explain)
            .expect("explain_json emits valid JSON")
            .to_compact();
        let entry = Arc::new(Entry {
            kernel: prog.name.clone(),
            code,
            explain,
        });
        let evicted = self.cache.lock().expect("schedule cache poisoned").insert(
            source_key,
            content,
            entry.clone(),
        );
        if evicted > 0 {
            self.metrics.record_cache_evictions(evicted);
        }
        Ok(Compiled {
            entry,
            cache_hit: false,
        })
    }

    /// Shapes the outcome into the response + log pair. One exit point
    /// so that *every* request — including malformed ones — produces
    /// exactly one `pluto-rpc/1` line and one `pluto-log/1` line.
    fn finish(
        &self,
        id: Json,
        method: &str,
        start: Instant,
        outcome: Result<Json, String>,
        detail: Option<CompileDetail>,
    ) -> Handled {
        let wall_ns = start.elapsed().as_nanos() as u64;
        let ok = outcome.is_ok();
        let response = match &outcome {
            Ok(result) => obj(vec![
                ("schema", Json::String("pluto-rpc/1".to_string())),
                ("id", id.clone()),
                ("ok", Json::Bool(true)),
                ("result", result.clone()),
            ]),
            Err(e) => obj(vec![
                ("schema", Json::String("pluto-rpc/1".to_string())),
                ("id", id.clone()),
                ("ok", Json::Bool(false)),
                ("error", Json::String(e.clone())),
            ]),
        };

        let mut log_fields = vec![
            ("schema", Json::String("pluto-log/1".to_string())),
            ("id", id),
            ("method", Json::String(method.to_string())),
            (
                "status",
                Json::String(if ok { "ok" } else { "error" }.to_string()),
            ),
            ("wall_ns", num(wall_ns)),
        ];
        if let Some(d) = &detail {
            log_fields.push(("kernel", Json::String(d.kernel.clone())));
            log_fields.push(("kernel_fnv", Json::String(format!("{:016x}", d.source_fnv))));
            log_fields.push((
                "cache",
                Json::String(if d.cache_hit { "hit" } else { "miss" }.to_string()),
            ));
            log_fields.push((
                "phases",
                Json::Array(
                    d.profile
                        .phases
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("path", Json::String(p.path.clone())),
                                ("wall_ns", num(p.wall_ns as u64)),
                            ])
                        })
                        .collect(),
                ),
            ));
            // The request's heaviest counters, largest first — enough to
            // see at a glance where a slow compile spent its work.
            let mut top: Vec<_> = d.profile.counters.iter().filter(|c| c.value > 0).collect();
            top.sort_by(|a, b| b.value.cmp(&a.value).then(a.name.cmp(b.name)));
            log_fields.push((
                "counters",
                Json::Array(
                    top.iter()
                        .take(5)
                        .map(|c| {
                            obj(vec![
                                ("name", Json::String(c.name.to_string())),
                                ("value", num(c.value)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Err(e) = &outcome {
            log_fields.push(("error", Json::String(e.clone())));
        }

        Handled {
            response: response.to_compact(),
            log: obj(log_fields).to_compact(),
        }
    }
}

/// The compile-specific facts [`Daemon::finish`] folds into the result
/// and log documents.
struct CompileDetail {
    kernel: String,
    source_fnv: u64,
    cache_hit: bool,
    profile: Profile,
    entry: Arc<Entry>,
}

impl CompileDetail {
    fn result_json(&self) -> Json {
        let profile = json::parse(&self.profile.to_json(Some(&self.kernel)))
            .expect("Profile::to_json emits valid JSON");
        let explain = json::parse(&self.entry.explain).expect("cached explain is valid JSON");
        obj(vec![
            ("kernel", Json::String(self.kernel.clone())),
            (
                "kernel_fnv",
                Json::String(format!("{:016x}", self.source_fnv)),
            ),
            (
                "cache",
                Json::String(if self.cache_hit { "hit" } else { "miss" }.to_string()),
            ),
            ("code", Json::String(self.entry.code.clone())),
            ("profile", profile),
            ("explain", explain),
        ])
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: u64) -> Json {
    Json::Number(n as f64)
}
