//! The audited end-to-end pipeline: optimize → generate → **verify**.
//!
//! The core `pluto::Optimizer` stops at the transformation and `codegen`
//! stops at the AST; neither can depend on the other's products to audit
//! the final program (the crate graph is `codegen → pluto`, and the
//! analyzer needs both). This umbrella-crate module is where the three
//! meet: it runs the whole pipeline and hands the generated AST to
//! `pluto_analyze` for an independent post-codegen audit — the race
//! detector, the bounds prover and the AST lints — returning the
//! diagnostics alongside the artifacts.

use pluto::{Optimized, Optimizer, PlutoError};
use pluto_analyze::{analyze, AnalysisInput, Diagnostic};
use pluto_codegen::{generate, Ast};
use pluto_ir::Program;
use pluto_linalg::Int;
use pluto_obs::Profile;

/// Every product of one audited compilation.
pub struct Compiled {
    /// Dependence graph + search result (transformation, satisfaction map).
    pub optimized: Optimized,
    /// The generated loop AST.
    pub ast: Ast,
    /// The analyzer's findings on the generated program (sorted, errors
    /// first; empty for a clean compile).
    pub diagnostics: Vec<Diagnostic>,
    /// Phase spans + solver counters observed while compiling (schema and
    /// glossary in PERFORMANCE.md).
    pub profile: Profile,
}

impl Compiled {
    /// Whether the audit found no `Error`-severity diagnostics.
    pub fn is_clean(&self) -> bool {
        pluto_analyze::is_clean(&self.diagnostics)
    }
}

/// Runs the full pipeline on `prog` with the given optimizer
/// configuration, then audits the generated AST.
///
/// `extents[a][d]`, when given, is an affine row over `[params…, 1]`
/// declaring the size of dimension `d` of array `a`, enabling the PL002
/// bounds prover; without it only the race check and lints run.
///
/// # Errors
/// Propagates [`PlutoError`] from the transformation search; analysis
/// itself cannot fail (its findings are data, not errors).
pub fn compile_audited(
    prog: &Program,
    optimizer: Optimizer,
    extents: Option<&[Vec<Vec<Int>>]>,
) -> Result<Compiled, PlutoError> {
    let session = pluto_obs::Session::start();
    let optimized = match optimizer.optimize(prog) {
        Ok(o) => o,
        Err(e) => {
            session.finish(); // recording must not outlive the compile
            return Err(e);
        }
    };
    let ast = generate(prog, &optimized.result.transform);
    let diagnostics = {
        let _s = pluto_obs::span("analyze");
        analyze(&AnalysisInput {
            program: prog,
            deps: &optimized.deps,
            transform: &optimized.result.transform,
            ast: &ast,
            extents,
            param_values: None,
        })
    };
    Ok(Compiled {
        optimized,
        ast,
        diagnostics,
        profile: session.finish(),
    })
}
