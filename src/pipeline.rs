//! The audited end-to-end pipeline: optimize → generate → **verify**.
//!
//! The core `pluto::Optimizer` stops at the transformation and `codegen`
//! stops at the AST; neither can depend on the other's products to audit
//! the final program (the crate graph is `codegen → pluto`, and the
//! analyzer needs both). This umbrella-crate module is where the three
//! meet: it runs the whole pipeline and hands the generated AST to
//! `pluto_analyze` for an independent post-codegen audit — the race
//! detector, the bounds prover and the AST lints — returning the
//! diagnostics alongside the artifacts.

use pluto::{Optimized, Optimizer, PlutoError};
use pluto_analyze::{analyze, bytecode, AnalysisInput, Diagnostic};
use pluto_codegen::{generate, Ast};
use pluto_ir::Program;
use pluto_linalg::Int;
use pluto_machine::compile_kernel_with_extents;
use pluto_obs::decision::DecisionLog;
use pluto_obs::Profile;

/// A concrete execution shape: the parameter values and per-array
/// extents a kernel would actually run with. Handing one to
/// [`compile_audited_exec`] extends the audit down to the compiled
/// executor — the AST is lowered to bytecode and translation-validated
/// (PL008–PL013) against the polyhedral source, and the symbolic checks
/// (PL002 bounds, PL007 ledger, races) run with parameters pinned to
/// these values.
#[derive(Debug, Clone, Copy)]
pub struct ExecShape<'a> {
    /// One value per program parameter, in declaration order.
    pub params: &'a [i64],
    /// Concrete extents per array (row-major), as the executor sizes its
    /// buffers — typically `ParsedUnit::try_extents` output.
    pub extents: &'a [Vec<usize>],
}

/// Every product of one audited compilation.
pub struct Compiled {
    /// Dependence graph + search result (transformation, satisfaction map).
    pub optimized: Optimized,
    /// The generated loop AST.
    pub ast: Ast,
    /// The analyzer's findings on the generated program (sorted, errors
    /// first; empty for a clean compile).
    pub diagnostics: Vec<Diagnostic>,
    /// Phase spans + solver counters observed while compiling (schema and
    /// glossary in PERFORMANCE.md).
    pub profile: Profile,
    /// The optimizer's decision event log (search telemetry; feeds the
    /// PL007 ledger cross-check and the `--explain` reports).
    pub decision_log: DecisionLog,
}

impl Compiled {
    /// Whether the audit found no `Error`-severity diagnostics.
    pub fn is_clean(&self) -> bool {
        pluto_analyze::is_clean(&self.diagnostics)
    }

    /// This compile's mergeable summary
    /// ([`aggregate::Snapshot`](pluto_obs::aggregate::Snapshot)) — what
    /// a long-running service folds into its
    /// [`ServiceMetrics`](pluto_obs::aggregate::ServiceMetrics) after
    /// each request (the `plutod` daemon does exactly this with every
    /// served profile).
    pub fn snapshot(&self) -> pluto_obs::aggregate::Snapshot {
        pluto_obs::aggregate::Snapshot::of(&self.profile)
    }
}

/// Runs the full pipeline on `prog` with the given optimizer
/// configuration, then audits the generated AST.
///
/// `extents[a][d]`, when given, is an affine row over `[params…, 1]`
/// declaring the size of dimension `d` of array `a`, enabling the PL002
/// bounds prover; without it only the race check and lints run.
///
/// # Errors
/// Propagates [`PlutoError`] from the transformation search; analysis
/// itself cannot fail (its findings are data, not errors).
pub fn compile_audited(
    prog: &Program,
    optimizer: Optimizer,
    extents: Option<&[Vec<Vec<Int>>]>,
) -> Result<Compiled, PlutoError> {
    compile_audited_exec(prog, optimizer, extents, None)
}

/// [`compile_audited`] extended with an optional concrete execution
/// shape. When `exec` is `Some`, the audit additionally lowers the AST
/// through `machine::compile` at those parameters/extents and runs the
/// bytecode translation validator ([`pluto_analyze::bytecode`]) on the
/// result; its findings are merged (and re-sorted) into `diagnostics`,
/// and the whole verification is attributed to the `analyze/bytecode`
/// span in the returned profile.
///
/// # Errors
/// Propagates [`PlutoError`] from the transformation search; analysis
/// itself cannot fail (its findings are data, not errors).
pub fn compile_audited_exec(
    prog: &Program,
    optimizer: Optimizer,
    extents: Option<&[Vec<Vec<Int>>]>,
    exec: Option<ExecShape>,
) -> Result<Compiled, PlutoError> {
    // This compile's own observability context: counters, spans, and the
    // decision log all land here, isolated from any concurrent compile.
    let session = pluto_obs::ObsSession::builder()
        .profile()
        .decisions()
        .build();
    // The install guard uninstalls on every exit path, including the
    // `?` early return: a failed compile leaves no session behind.
    let guard = session.install();
    let optimized = optimizer.optimize(prog)?;
    let decision_log = session.take_decisions();
    let ledger = decision_log.ledger(optimized.deps.len());
    let ast = generate(prog, &optimized.result.transform);
    let param_values: Option<Vec<Int>> = exec.map(|e| e.params.iter().map(|&v| v as Int).collect());
    let diagnostics = {
        let _s = pluto_obs::span("analyze");
        let mut diags = analyze(&AnalysisInput {
            program: prog,
            deps: &optimized.deps,
            transform: &optimized.result.transform,
            ast: &ast,
            extents,
            param_values: param_values.as_deref(),
            ledger: Some(&ledger),
        });
        if let Some(shape) = exec {
            let kernel = compile_kernel_with_extents(prog, &ast, shape.params, shape.extents);
            diags.extend(bytecode::check(&bytecode::BytecodeInput {
                program: prog,
                transform: &optimized.result.transform,
                ast: &ast,
                kernel: &kernel,
            }));
            pluto_analyze::sort_diagnostics(&mut diags);
        }
        diags
    };
    drop(guard);
    Ok(Compiled {
        optimized,
        ast,
        diagnostics,
        profile: session.finish_profile(),
        decision_log,
    })
}
