//! The audited end-to-end pipeline: optimize → generate → **verify**.
//!
//! The core `pluto::Optimizer` stops at the transformation and `codegen`
//! stops at the AST; neither can depend on the other's products to audit
//! the final program (the crate graph is `codegen → pluto`, and the
//! analyzer needs both). This umbrella-crate module is where the three
//! meet: it runs the whole pipeline and hands the generated AST to
//! `pluto_analyze` for an independent post-codegen audit — the race
//! detector, the bounds prover and the AST lints — returning the
//! diagnostics alongside the artifacts.

use pluto::{Optimized, Optimizer, PlutoError};
use pluto_analyze::{analyze, AnalysisInput, Diagnostic};
use pluto_codegen::{generate, Ast};
use pluto_ir::Program;
use pluto_linalg::Int;
use pluto_obs::decision::DecisionLog;
use pluto_obs::Profile;

/// Every product of one audited compilation.
pub struct Compiled {
    /// Dependence graph + search result (transformation, satisfaction map).
    pub optimized: Optimized,
    /// The generated loop AST.
    pub ast: Ast,
    /// The analyzer's findings on the generated program (sorted, errors
    /// first; empty for a clean compile).
    pub diagnostics: Vec<Diagnostic>,
    /// Phase spans + solver counters observed while compiling (schema and
    /// glossary in PERFORMANCE.md).
    pub profile: Profile,
    /// The optimizer's decision event log (search telemetry; feeds the
    /// PL007 ledger cross-check and the `--explain` reports).
    pub decision_log: DecisionLog,
}

impl Compiled {
    /// Whether the audit found no `Error`-severity diagnostics.
    pub fn is_clean(&self) -> bool {
        pluto_analyze::is_clean(&self.diagnostics)
    }
}

/// Runs the full pipeline on `prog` with the given optimizer
/// configuration, then audits the generated AST.
///
/// `extents[a][d]`, when given, is an affine row over `[params…, 1]`
/// declaring the size of dimension `d` of array `a`, enabling the PL002
/// bounds prover; without it only the race check and lints run.
///
/// # Errors
/// Propagates [`PlutoError`] from the transformation search; analysis
/// itself cannot fail (its findings are data, not errors).
pub fn compile_audited(
    prog: &Program,
    optimizer: Optimizer,
    extents: Option<&[Vec<Vec<Int>>]>,
) -> Result<Compiled, PlutoError> {
    let session = pluto_obs::Session::start();
    // Decision recording is process-global: hold the window guard so
    // concurrent audited compiles (test threads) don't interleave logs.
    let window = pluto_obs::decision::exclusive();
    pluto_obs::decision::start();
    let optimized = match optimizer.optimize(prog) {
        Ok(o) => o,
        Err(e) => {
            // Recording must not outlive the compile.
            pluto_obs::decision::finish();
            drop(window);
            session.finish();
            return Err(e);
        }
    };
    let decision_log = pluto_obs::decision::finish();
    drop(window);
    let ledger = decision_log.ledger(optimized.deps.len());
    let ast = generate(prog, &optimized.result.transform);
    let diagnostics = {
        let _s = pluto_obs::span("analyze");
        analyze(&AnalysisInput {
            program: prog,
            deps: &optimized.deps,
            transform: &optimized.result.transform,
            ast: &ast,
            extents,
            param_values: None,
            ledger: Some(&ledger),
        })
    };
    Ok(Compiled {
        optimized,
        ast,
        diagnostics,
        profile: session.finish(),
        decision_log,
    })
}
