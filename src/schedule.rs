//! The reentrant library entry point — the API a compile *service*
//! wraps.
//!
//! `plutoc` is a one-shot CLI; the ROADMAP's `plutod` serves many
//! concurrent compile requests from one process. [`pluto_schedule`] is
//! the embedding-friendly analogue of libpluto's
//! `pluto_schedule(domains, deps, options)`: the caller owns the
//! polyhedral extraction (domains and accesses arrive as an
//! [`ir::Program`](pluto_ir::Program), dependences as the caller's own
//! analysis or a replayed cache), and every call builds a **private**
//! [`ObsSession`](pluto_obs::ObsSession), so any number of calls can run
//! concurrently on different threads — each returns its own generated
//! code, its own `pluto-profile/3` counters/spans, and its own
//! `pluto-explain/1` decision report, with no cross-talk.

use pluto::{explain_json, Optimizer, PlutoError};
use pluto_codegen::{emit_c, generate};
use pluto_ir::{Dependence, Program};
use pluto_obs::Profile;

/// Everything one [`pluto_schedule`] call produces.
pub struct Scheduled {
    /// The transformed program as OpenMP C.
    pub code: String,
    /// Phase spans, solver counters, and latency histograms for this
    /// call alone (`pluto-profile/3` via [`Profile::to_json`]).
    pub profile: Profile,
    /// The `pluto-explain/1` JSON document: schedule rows, satisfaction
    /// ledger, and the search's decision events.
    pub explain: String,
}

/// Searches, tiles, and generates code for `prog` under its own
/// observability session — safe to call from any number of threads at
/// once.
///
/// Dependences are caller-supplied (libpluto-style); compute them with
/// [`pluto_ir::analyze_dependences`] or
/// [`pluto_ir::analyze_dependences_with`] if you have nothing cached.
/// The session also scopes the emptiness-cache store, so two concurrent
/// calls report independent, deterministic `ilp.cache_*` counters.
///
/// # Errors
/// Propagates [`PlutoError`] from the transformation search.
///
/// # Example
///
/// ```
/// use pluto_repro::pluto_schedule;
/// use pluto::Optimizer;
/// use pluto_frontend::kernels;
/// use pluto_ir::analyze_dependences;
///
/// let k = kernels::matmul();
/// let deps = analyze_dependences(&k.program, true);
/// let out = pluto_schedule(&k.program, deps, &Optimizer::new().tile_size(16))?;
/// assert!(out.code.contains("#pragma omp parallel for"));
/// assert!(out.explain.contains("pluto-explain/1"));
/// assert!(out.profile.phase("optimize/search").is_some());
/// # Ok::<(), pluto::PlutoError>(())
/// ```
pub fn pluto_schedule(
    prog: &Program,
    deps: Vec<Dependence>,
    options: &Optimizer,
) -> Result<Scheduled, PlutoError> {
    let session = pluto_obs::ObsSession::builder()
        .profile()
        .decisions()
        .build();
    // RAII: the `?` on a failed search uninstalls too — no session
    // leaks onto the calling thread.
    let guard = session.install();
    let optimized = options.optimize_with_deps(prog, deps)?;
    let log = session.take_decisions();
    let ast = generate(prog, &optimized.result.transform);
    let code = emit_c(prog, &ast);
    drop(guard);
    let explain = explain_json(
        prog,
        &optimized.deps,
        &optimized.result,
        &log,
        Some(&prog.name),
    );
    Ok(Scheduled {
        code,
        profile: session.finish_profile(),
        explain,
    })
}
