//! `pluto-repro` — umbrella crate re-exporting the whole `pluto-rs`
//! workspace, a from-scratch Rust reproduction of *"A Practical Automatic
//! Polyhedral Parallelizer and Locality Optimizer"* (PLDI 2008).
//!
//! See the repository README for the architecture map; the short version:
//!
//! * [`frontend`] parses affine C (or builds the paper's kernels);
//! * [`ir`] holds the polyhedral program and computes dependence polyhedra;
//! * [`pluto`] finds the transformation (legality + cost-bounded lexmin,
//!   tiling, wavefronting) — the paper's contribution;
//! * [`codegen`] scans the transformed polyhedra into an executable loop
//!   AST and OpenMP C;
//! * [`analyze`] independently audits the generated program — race
//!   detection for `parallel` loops, array-bounds proofs, AST lints —
//!   (see [`pipeline::compile_audited`] for the wired-up flow);
//! * [`machine`] executes and measures (threads, caches, simulated
//!   quad-core);
//! * [`poly`], [`ilp`] and [`linalg`] are the exact-arithmetic substrates
//!   standing in for PolyLib and PIP;
//! * [`obs`] observes it all — phase spans and solver counters surfaced
//!   as compile profiles (`plutoc --profile`, PERFORMANCE.md);
//! * [`daemon`] serves it all — the long-running `plutod` compile
//!   service: `pluto-rpc/1` over stdio or a Unix socket, a
//!   content-addressed schedule cache, and service-level aggregation of
//!   every request's profile (`pluto-stats/1`, DESIGN.md §12).
//!
//! DESIGN.md (repo root) is the full inventory: §1 maps every paper
//! component to its crate, §6 holds the algorithmic notes, §9 the
//! observability layer.
//!
//! # Example: end-to-end
//!
//! ```
//! use pluto::Optimizer;
//! use pluto_codegen::{generate, original_schedule};
//! use pluto_frontend::kernels;
//! use pluto_machine::{run_sequential, Arrays};
//!
//! let kernel = kernels::matmul();
//! let optimized = Optimizer::new().tile_size(16).optimize(&kernel.program)?;
//! let ast = generate(&kernel.program, &optimized.result.transform);
//!
//! // Execute and check against the untransformed program.
//! let params = [24i64];
//! let mut a = Arrays::new((kernel.extents)(&params));
//! a.seed_with(kernels::seed_value);
//! run_sequential(&kernel.program, &ast, &params, &mut a);
//!
//! let mut reference = Arrays::new((kernel.extents)(&params));
//! reference.seed_with(kernels::seed_value);
//! let orig = generate(&kernel.program, &original_schedule(&kernel.program));
//! run_sequential(&kernel.program, &orig, &params, &mut reference);
//! assert!(a.bitwise_eq(&reference));
//! # Ok::<(), pluto::PlutoError>(())
//! ```

pub mod daemon;
pub mod pipeline;

pub use pluto;
pub use schedule::{pluto_schedule, Scheduled};

mod schedule;
pub use pluto_analyze as analyze;
pub use pluto_codegen as codegen;
pub use pluto_frontend as frontend;
pub use pluto_ilp as ilp;
pub use pluto_ir as ir;
pub use pluto_linalg as linalg;
pub use pluto_machine as machine;
pub use pluto_obs as obs;
pub use pluto_poly as poly;
