//! `plutod` — the long-running compile service (ROADMAP item 3).
//!
//! Speaks `pluto-rpc/1`: one JSON request per line in, one JSON
//! response per line out, with a `pluto-log/1` record per request on
//! stderr. By default it serves stdin/stdout (ideal for piping and for
//! supervision); `--socket` serves a Unix domain socket instead, one
//! thread per connection, all connections sharing the schedule cache
//! and the `stats` aggregate.
//!
//! ```text
//! plutod [options]
//!
//!   --socket <path>    serve a Unix socket at <path> instead of stdio
//!                      (a stale socket file at <path> is replaced)
//!   --cache-cap <n>    bound the schedule cache to n entries
//!                      (default 1024; oldest evicted first)
//! ```
//!
//! Protocol quickstart (README "The compile service" has more):
//!
//! ```text
//! $ printf '%s\n' \
//!   '{"schema":"pluto-rpc/1","id":1,"method":"compile","source":"params N; array a[N]; for (i = 1; i < N; i++) { a[i] = a[i-1]; }"}' \
//!   '{"schema":"pluto-rpc/1","id":2,"method":"stats"}' | plutod
//! ```
//!
//! Request/response and stats/log schemas are documented in
//! PERFORMANCE.md §5.6–5.7 and pinned by `tests/daemon_golden.rs`.

use pluto_repro::daemon::Daemon;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("plutod: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut socket: Option<String> = None;
    let mut cache_cap = pluto_repro::daemon::DEFAULT_CACHE_CAP;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().ok_or("--socket expects a path")?),
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap expects a number")?;
                cache_cap =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--cache-cap expects a positive number, got `{v}`")
                    })?;
            }
            "--help" | "-h" => {
                eprintln!("usage: plutod [--socket path] [--cache-cap n]");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let daemon = Arc::new(Daemon::with_cache_cap(cache_cap));
    match socket {
        Some(path) => serve_socket(daemon, &path),
        None => serve_stdio(&daemon),
    }
}

/// Serves stdin → stdout until EOF: the piped/supervised mode.
fn serve_stdio(daemon: &Daemon) -> Result<ExitCode, String> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let handled = daemon.handle_line(&line);
        eprintln!("{}", handled.log);
        writeln!(stdout, "{}", handled.response)
            .and_then(|()| stdout.flush())
            .map_err(|e| format!("stdout write failed: {e}"))?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Serves a Unix socket, one thread per connection; every connection
/// shares one daemon (one schedule cache, one `stats` aggregate).
fn serve_socket(daemon: Arc<Daemon>, path: &str) -> Result<ExitCode, String> {
    // A previous run's socket file would make bind fail; replace it.
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot replace `{path}`: {e}")),
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("cannot bind socket `{path}`: {e}"))?;
    eprintln!("plutod: serving pluto-rpc/1 on {path}");
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
        let daemon = daemon.clone();
        std::thread::spawn(move || {
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("plutod: connection clone failed: {e}");
                    return;
                }
            };
            for line in BufReader::new(stream).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let handled = daemon.handle_line(&line);
                eprintln!("{}", handled.log);
                if writeln!(writer, "{}", handled.response)
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break; // client hung up mid-response
                }
            }
        });
    }
    Ok(ExitCode::SUCCESS)
}
