//! `plutoc` — the source-to-source tool: affine C in, transformed
//! OpenMP-parallel tiled C out, like the original PLuTo.
//!
//! ```text
//! plutoc [options] <file.c | ->        # '-' reads stdin
//!
//!   --tile <n>        tile size (default 32)
//!   --l2 <factor>     add a second tiling level, factor x L1 tiles
//!   --notile          disable tiling
//!   --noparallel      disable parallelization
//!   --nofuse          distribute all strongly connected components
//!   --noinputdeps     ignore read-after-read dependences in the cost fn
//!   --wavefront <m>   degrees of pipelined parallelism (default 1)
//!   --unroll <f>      unroll-jam innermost loops by f (post-pass)
//!   --show-transform  print the statement-wise transformation too
//!   --explain         print the transformation report (rows, bands,
//!                     dependence satisfaction) plus the optimizer's
//!                     decision log to stderr
//!   --explain-json    print the report as a `pluto-explain/1` JSON
//!                     document on stdout *instead of* the C code
//!   --analyze         run the static verifier on the generated code and
//!                     print its report to stderr; exit non-zero if it
//!                     finds an error (race, out-of-bounds access)
//!   --analyze-json    like --analyze, but print the diagnostics as a
//!                     JSON array on stdout *instead of* the C code
//!   --profile         record phase spans + solver counters while
//!                     compiling and print the profile table to stderr
//!                     (glossary in PERFORMANCE.md)
//!   --profile-json    like --profile, but print the profile as
//!                     `pluto-profile/3` JSON on stdout *instead of* the
//!                     C code
//!   --verify <vals>   execute original and transformed code at the given
//!                     comma-separated parameter values (arrays allocated
//!                     from the source's declared extents) and check the
//!                     results are bitwise identical
//!   --trace <out>     execute the transformed code on the thread team
//!                     and write a Chrome Trace Event Format document
//!                     (`trace_event/1`, loadable in Perfetto) to <out>;
//!                     parameter values come from --verify when given,
//!                     else default to 64 each
//!   --threads <n>     thread-team width for --trace runs and parallel
//!                     dependence analysis (default 4)
//!   --no-solver-cache disable every compile-time shortcut — the
//!                     canonicalized emptiness cache, simplex
//!                     warm-starting, and dependence-candidate pruning
//!                     (DESIGN.md §11). Output-invariant by construction;
//!                     this switch exists for differentials and debugging
//! ```

use pluto::{FusionPolicy, Optimizer, PlutoOptions};
use pluto_analyze::{analyze, is_clean, render_json, render_text, AnalysisInput};
use pluto_codegen::{emit_c, generate, original_schedule, unroll_innermost};
use pluto_machine::{
    compile_kernel_with_extents, run_parallel, run_sequential, Arrays, ParallelConfig,
};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("plutoc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tile: i128 = 32;
    let mut l2: Option<i128> = None;
    let mut do_tile = true;
    let mut do_parallel = true;
    let mut fuse = FusionPolicy::Smart;
    let mut input_deps = true;
    let mut wavefront = 1usize;
    let mut unroll = 1usize;
    let mut show_transform = false;
    let mut do_explain = false;
    let mut explain_json = false;
    let mut do_analyze = false;
    let mut analyze_json = false;
    let mut do_profile = false;
    let mut profile_json = false;
    let mut verify: Option<Vec<i64>> = None;
    let mut trace_out: Option<String> = None;
    let mut threads = 4usize;
    let mut solver_cache = true;
    let mut path: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tile" => tile = parse_num(&a, it.next())?,
            "--l2" => l2 = Some(parse_num(&a, it.next())?),
            "--notile" => do_tile = false,
            "--noparallel" => do_parallel = false,
            "--nofuse" => fuse = FusionPolicy::NoFuse,
            "--noinputdeps" => input_deps = false,
            "--wavefront" => wavefront = parse_num(&a, it.next())? as usize,
            "--unroll" => unroll = parse_num(&a, it.next())? as usize,
            "--show-transform" => show_transform = true,
            "--explain" => do_explain = true,
            "--explain-json" => {
                do_explain = true;
                explain_json = true;
            }
            "--analyze" => do_analyze = true,
            "--analyze-json" => {
                do_analyze = true;
                analyze_json = true;
            }
            "--profile" => do_profile = true,
            "--profile-json" => {
                do_profile = true;
                profile_json = true;
            }
            "--verify" => {
                let vals = it.next().unwrap_or_default();
                verify = Some(
                    vals.split(',')
                        .map(|v| v.trim().parse())
                        .collect::<Result<_, _>>()
                        .map_err(|_| "--verify expects comma-separated integers".to_string())?,
                );
            }
            "--trace" => {
                trace_out = Some(it.next().ok_or("--trace expects an output path")?);
            }
            "--threads" => threads = parse_num(&a, it.next())? as usize,
            "--no-solver-cache" => solver_cache = false,
            "--help" | "-h" => {
                eprintln!("usage: plutoc [--tile n] [--l2 f] [--notile] [--noparallel]");
                eprintln!("              [--nofuse] [--noinputdeps] [--wavefront m]");
                eprintln!("              [--unroll f] [--show-transform] [--explain]");
                eprintln!("              [--explain-json] [--analyze] [--analyze-json]");
                eprintln!("              [--profile] [--profile-json]");
                eprintln!("              [--verify v1,v2,…] [--trace out.json]");
                eprintln!("              [--threads n] [--no-solver-cache] <file.c | ->");
                return Ok(ExitCode::SUCCESS);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let claimed: Vec<&str> = [
        ("--analyze-json", analyze_json),
        ("--profile-json", profile_json),
        ("--explain-json", explain_json),
    ]
    .iter()
    .filter(|(_, on)| *on)
    .map(|(f, _)| *f)
    .collect();
    if claimed.len() > 1 {
        return Err(format!(
            "{} both claim stdout; pick one",
            claimed.join(" and ")
        ));
    }

    let source = match path.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("failed to read stdin: {e}"))?;
            buf
        }
        Some(p) => std::fs::read_to_string(p).map_err(|e| format!("cannot read `{p}`: {e}"))?,
    };

    // This invocation's observability session, installed before parsing
    // so the "parse" span is captured. The trace recorder is enabled
    // here too (not at the execution block): with it on, every compile
    // phase span emits Begin/End events on tid 0, so the exported
    // document shows the compile timeline next to the runtime
    // wavefronts.
    let obs = {
        let mut b = pluto_obs::ObsSession::builder();
        if do_profile {
            b = b.profile();
        }
        if trace_out.is_some() {
            b = b.trace();
        }
        if do_explain || do_analyze {
            b = b.decisions();
        }
        b.build()
    };
    let _obs_guard = obs.install();

    let unit = pluto_frontend::parse_unit(&source).map_err(|e| e.to_string())?;
    let prog = unit.program.clone();

    // One switch governs every compile-time shortcut, so a single
    // cached-vs-uncached differential covers them all (DESIGN.md §11).
    pluto_poly::cache::set_enabled(solver_cache);
    let mut opt = Optimizer::new()
        .tile_size(tile)
        .tiling(do_tile)
        .parallel(do_parallel)
        .wavefront_degrees(wavefront)
        .dep_pruning(solver_cache)
        .dep_threads(if solver_cache { threads } else { 1 })
        .search_options(PlutoOptions {
            use_input_deps: input_deps,
            fuse,
            warm_start: solver_cache,
            ..PlutoOptions::default()
        });
    if let Some(f) = l2 {
        opt = opt.second_level(f);
    }

    let optimized = opt
        .optimize(&prog)
        .map_err(|e| format!("transformation failed: {e}"))?;
    let decision_log = obs.take_decisions();
    let ledger = decision_log.ledger(optimized.deps.len());
    if show_transform {
        eprintln!("{}", optimized.result.transform.display(&prog));
    }
    let mut ast = generate(&prog, &optimized.result.transform);
    if unroll > 1 {
        unroll_innermost(&mut ast, unroll);
    }

    let kernel = match path.as_deref() {
        None | Some("-") => "stdin".to_string(),
        Some(p) => std::path::Path::new(p)
            .file_stem()
            .map_or_else(|| p.to_string(), |s| s.to_string_lossy().into_owned()),
    };

    if do_explain {
        if explain_json {
            let doc = pluto::explain_json(
                &prog,
                &optimized.deps,
                &optimized.result,
                &decision_log,
                Some(&kernel),
            );
            pluto_obs::json::parse(&doc)
                .map_err(|e| format!("--explain-json: emitted document is not valid JSON: {e}"))?;
            print!("{doc}");
        } else {
            eprint!(
                "{}",
                pluto::explain(&prog, &optimized.deps, &optimized.result)
            );
            eprint!("{}", decision_log.render_text());
        }
    }

    let mut analyzer_failed = false;
    if do_analyze {
        let _s = pluto_obs::span("analyze");
        let mut diags = analyze(&AnalysisInput {
            program: &prog,
            deps: &optimized.deps,
            transform: &optimized.result.transform,
            ast: &ast,
            extents: Some(unit.extent_rows()),
            param_values: None,
            ledger: Some(&ledger),
        });
        // Bytecode translation validation needs a concrete execution
        // shape: take the --verify parameter values when given, else the
        // same 64-per-parameter default the executor paths use.
        let bc_params: Vec<i64> = match &verify {
            Some(v) if v.len() == prog.num_params() => v.clone(),
            _ => vec![64; prog.num_params()],
        };
        match unit.try_extents(&bc_params) {
            Ok(extents) => {
                let ck = compile_kernel_with_extents(&prog, &ast, &bc_params, &extents);
                diags.extend(pluto_analyze::bytecode::check(
                    &pluto_analyze::bytecode::BytecodeInput {
                        program: &prog,
                        transform: &optimized.result.transform,
                        ast: &ast,
                        kernel: &ck,
                    },
                ));
                pluto_analyze::sort_diagnostics(&mut diags);
            }
            Err(m) => eprintln!("note: bytecode verification skipped: {m}"),
        }
        if analyze_json {
            print!("{}", render_json(&diags));
        } else {
            eprint!("{}", render_text(&diags));
        }
        analyzer_failed = !is_clean(&diags);
    }
    // The traced execution runs before the session finishes so a
    // combined --profile --trace invocation gets the `exec` section of
    // `pluto-profile/3` filled in from the same run.
    if let Some(out_path) = &trace_out {
        let params: Vec<i64> = match &verify {
            Some(v) => v.clone(),
            None => vec![64; prog.num_params()],
        };
        if params.len() != prog.num_params() {
            return Err(format!(
                "--trace expects {} --verify value(s) for ({})",
                prog.num_params(),
                prog.params.join(", ")
            ));
        }
        let extents = unit
            .try_extents(&params)
            .map_err(|m| format!("--trace: {m}"))?;
        let mut arrays = Arrays::new(extents);
        arrays.seed_with(pluto_frontend::kernels::seed_value);
        // The trace recorder has been live since before parsing: the
        // document carries the compile-phase spans recorded since, plus
        // this execution.
        run_parallel(
            &prog,
            &ast,
            &params,
            &mut arrays,
            ParallelConfig {
                threads,
                collapse: wavefront.max(1),
            },
        );
        let trace = obs.take_trace();
        let doc = trace.to_chrome_json();
        pluto_obs::json::parse(&doc)
            .map_err(|e| format!("--trace: emitted trace is not valid JSON: {e}"))?;
        std::fs::write(out_path, &doc).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
        eprintln!(
            "plutoc: wrote {} trace events on {} timelines to {out_path}",
            trace.events.len(),
            trace.distinct_tids()
        );
    }
    if do_profile {
        let profile = obs.finish_profile();
        if profile_json {
            print!("{}", profile.to_json(Some(&kernel)));
        } else {
            eprint!("{}", profile.render_table());
        }
    }
    if !analyze_json && !profile_json && !explain_json {
        print!("{}", emit_c(&prog, &ast));
    }

    if let Some(params) = verify {
        if params.len() != prog.num_params() {
            return Err(format!(
                "--verify expects {} value(s) for ({})",
                prog.num_params(),
                prog.params.join(", ")
            ));
        }
        let extents = unit
            .try_extents(&params)
            .map_err(|m| format!("--verify: {m}"))?;
        let mut reference = Arrays::new(extents.clone());
        reference.seed_with(pluto_frontend::kernels::seed_value);
        let orig = generate(&prog, &original_schedule(&prog));
        let st = run_sequential(&prog, &orig, &params, &mut reference);
        let mut transformed = Arrays::new(extents);
        transformed.seed_with(pluto_frontend::kernels::seed_value);
        run_sequential(&prog, &ast, &params, &mut transformed);
        if transformed.bitwise_eq(&reference) {
            eprintln!(
                "plutoc: verified — {} instances, transformed output bitwise-identical",
                st.instances
            );
        } else {
            return Err("VERIFICATION FAILED — transformed output diverges".to_string());
        }
    }
    Ok(if analyzer_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn parse_num(flag: &str, v: Option<String>) -> Result<i128, String> {
    let s = v.ok_or_else(|| format!("{flag} expects a number"))?;
    s.parse()
        .map_err(|_| format!("{flag} expects a number, got `{s}`"))
}
