//! `plutoc` — the source-to-source tool: affine C in, transformed
//! OpenMP-parallel tiled C out, like the original PLuTo.
//!
//! ```text
//! plutoc [options] <file.c | ->        # '-' reads stdin
//!
//!   --tile <n>        tile size (default 32)
//!   --l2 <factor>     add a second tiling level, factor x L1 tiles
//!   --notile          disable tiling
//!   --noparallel      disable parallelization
//!   --nofuse          distribute all strongly connected components
//!   --noinputdeps     ignore read-after-read dependences in the cost fn
//!   --wavefront <m>   degrees of pipelined parallelism (default 1)
//!   --unroll <f>      unroll-jam innermost loops by f (post-pass)
//!   --show-transform  print the statement-wise transformation too
//!   --verify <vals>   execute original and transformed code at the given
//!                     comma-separated parameter values (arrays allocated
//!                     from the source's declared extents) and check the
//!                     results are bitwise identical
//! ```

use pluto::{FusionPolicy, Optimizer, PlutoOptions};
use pluto_codegen::{emit_c, generate, original_schedule, unroll_innermost};
use pluto_machine::{run_sequential, Arrays};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tile: i128 = 32;
    let mut l2: Option<i128> = None;
    let mut do_tile = true;
    let mut do_parallel = true;
    let mut fuse = FusionPolicy::Smart;
    let mut input_deps = true;
    let mut wavefront = 1usize;
    let mut unroll = 1usize;
    let mut show_transform = false;
    let mut verify: Option<Vec<i64>> = None;
    let mut path: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tile" => tile = parse_num(it.next()),
            "--l2" => l2 = Some(parse_num(it.next())),
            "--notile" => do_tile = false,
            "--noparallel" => do_parallel = false,
            "--nofuse" => fuse = FusionPolicy::NoFuse,
            "--noinputdeps" => input_deps = false,
            "--wavefront" => wavefront = parse_num(it.next()) as usize,
            "--unroll" => unroll = parse_num(it.next()) as usize,
            "--show-transform" => show_transform = true,
            "--verify" => {
                let vals = it.next().unwrap_or_default();
                match vals.split(',').map(|v| v.trim().parse()).collect() {
                    Ok(v) => verify = Some(v),
                    Err(_) => {
                        eprintln!("plutoc: --verify expects comma-separated integers");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: plutoc [--tile n] [--l2 f] [--notile] [--noparallel]");
                eprintln!("              [--nofuse] [--noinputdeps] [--wavefront m]");
                eprintln!("              [--unroll f] [--show-transform] <file.c | ->");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("plutoc: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let source = match path.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("plutoc: failed to read stdin");
                return ExitCode::FAILURE;
            }
            buf
        }
        Some(p) => match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("plutoc: cannot read `{p}`: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let unit = match pluto_frontend::parse_unit(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("plutoc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = unit.program.clone();

    let mut opt = Optimizer::new()
        .tile_size(tile)
        .tiling(do_tile)
        .parallel(do_parallel)
        .wavefront_degrees(wavefront)
        .search_options(PlutoOptions {
            use_input_deps: input_deps,
            fuse,
            ..PlutoOptions::default()
        });
    if let Some(f) = l2 {
        opt = opt.second_level(f);
    }

    let optimized = match opt.optimize(&prog) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("plutoc: transformation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if show_transform {
        eprintln!("{}", optimized.result.transform.display(&prog));
    }
    let mut ast = generate(&prog, &optimized.result.transform);
    if unroll > 1 {
        unroll_innermost(&mut ast, unroll);
    }
    print!("{}", emit_c(&prog, &ast));
    if let Some(params) = verify {
        if params.len() != prog.num_params() {
            eprintln!(
                "plutoc: --verify expects {} value(s) for ({})",
                prog.num_params(),
                prog.params.join(", ")
            );
            return ExitCode::FAILURE;
        }
        let extents = unit.extents(&params);
        let mut reference = Arrays::new(extents.clone());
        reference.seed_with(pluto_frontend::kernels::seed_value);
        let orig = generate(&prog, &original_schedule(&prog));
        let st = run_sequential(&prog, &orig, &params, &mut reference);
        let mut transformed = Arrays::new(extents);
        transformed.seed_with(pluto_frontend::kernels::seed_value);
        run_sequential(&prog, &ast, &params, &mut transformed);
        if transformed.bitwise_eq(&reference) {
            eprintln!(
                "plutoc: verified — {} instances, transformed output bitwise-identical",
                st.instances
            );
        } else {
            eprintln!("plutoc: VERIFICATION FAILED — transformed output diverges");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn parse_num(v: Option<String>) -> i128 {
    match v.and_then(|s| s.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("plutoc: expected a number");
            std::process::exit(2);
        }
    }
}
