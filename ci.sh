#!/bin/sh
# Hermetic CI gate: lint + format checks, offline release build, full
# offline test suite, and the 200-kernel fixed-seed differential fuzz run.
#
# The workspace has zero external dependencies (path deps only), so every
# step runs with --offline against an empty crate registry. Randomized
# tests are seeded via pluto-testkit; failures print a
# `TESTKIT_SEED=<hex> TESTKIT_CASES=1` replay line.
set -eu

cd "$(dirname "$0")"

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustfmt (check only) =="
cargo fmt --check

echo "== build (release, all targets, offline) =="
cargo build --release --offline --workspace --all-targets

echo "== test suite (release, offline) =="
cargo test --release --offline --workspace

echo "== differential fuzz: 200 random kernels, fixed seed =="
TESTKIT_CASES=200 cargo test --release --offline --test differential_fuzz \
    -- --nocapture

echo "== ci.sh: all gates passed =="
