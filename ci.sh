#!/bin/sh
# Hermetic CI gate: lint + format + rustdoc checks, offline release
# build, full offline test suite, the 200-kernel fixed-seed differential
# fuzz run, and a bench_json smoke run with BENCH_*.json schema checks.
#
# The workspace has zero external dependencies (path deps only), so every
# step runs with --offline against an empty crate registry. Randomized
# tests are seeded via pluto-testkit; failures print a
# `TESTKIT_SEED=<hex> TESTKIT_CASES=1` replay line.
set -eu

cd "$(dirname "$0")"

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustfmt (check only) =="
cargo fmt --check

echo "== rustdoc (no-deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "== build (release, all targets, offline) =="
cargo build --release --offline --workspace --all-targets

echo "== test suite (release, offline) =="
cargo test --release --offline --workspace

echo "== differential fuzz: 200 random kernels, fixed seed =="
TESTKIT_CASES=200 cargo test --release --offline --test differential_fuzz \
    -- --nocapture

echo "== bench smoke: BENCH_*.json emission + well-formedness =="
# bench_json validates its own output with the in-tree pluto_obs::json
# parser before writing; here we re-check the files exist, parse, and
# carry the expected schema tags, keeping the gate hermetic (no python,
# no jq).
cargo run --release --offline -p pluto-bench
grep -q '"schema": "pluto-bench-pipeline/1"' BENCH_pipeline.json
grep -q '"schema": "pluto-bench-kernels/1"' BENCH_kernels.json

echo "== ci.sh: all gates passed =="
