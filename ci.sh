#!/bin/sh
# Hermetic CI gate: lint + format + rustdoc checks, offline release
# build, full offline test suite, the 200-kernel fixed-seed differential
# fuzz run, a bench_json smoke run with BENCH_*.json schema checks, a
# bench_diff perf-regression gate against the committed baselines, a
# concurrent-compile isolation smoke (per-session telemetry), a plutod
# daemon smoke (cache hits + the stats aggregation invariant re-derived
# from the wire documents), and a trace-schema smoke run of
# `plutoc --trace`.
#
# The workspace has zero external dependencies (path deps only), so every
# step runs with --offline against an empty crate registry. Randomized
# tests are seeded via pluto-testkit; failures print a
# `TESTKIT_SEED=<hex> TESTKIT_CASES=1` replay line.
set -eu

cd "$(dirname "$0")"

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustfmt (check only) =="
cargo fmt --check

echo "== rustdoc (no-deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "== build (release, all targets, offline) =="
cargo build --release --offline --workspace --all-targets

echo "== test suite (release, offline) =="
cargo test --release --offline --workspace

echo "== differential fuzz: 200 random kernels, fixed seed =="
# Each case also runs the bytecode translation validator (PL008–PL012)
# on the compiled kernel the engines executed — see testkit's oracle.
TESTKIT_CASES=200 cargo test --release --offline --test differential_fuzz \
    -- --nocapture

echo "== bench smoke: BENCH_*.json emission + well-formedness =="
# bench_json validates its own output with the in-tree pluto_obs::json
# parser before writing; here we re-check the files exist, parse, and
# carry the expected schema tags, keeping the gate hermetic (no python,
# no jq). Committed baselines are set aside first so bench_diff below
# can compare the fresh run against them.
cp BENCH_pipeline.json /tmp/pluto-ci-baseline-pipeline.json
cp BENCH_kernels.json /tmp/pluto-ci-baseline-kernels.json
cargo run --release --offline -p pluto-bench
grep -q '"schema": "pluto-bench-pipeline/3"' BENCH_pipeline.json
grep -q '"schema": "pluto-bench-kernels/2"' BENCH_kernels.json

echo "== bench_diff: fresh run vs committed baselines (soft wall-time gate) =="
# Counter-based metrics are deterministic and gate hard (fail >= 50 %
# growth); wall-time metrics only warn — this machine is not the
# machine that produced the committed numbers. PERFORMANCE.md §6.
./target/release/bench_diff /tmp/pluto-ci-baseline-pipeline.json BENCH_pipeline.json
./target/release/bench_diff /tmp/pluto-ci-baseline-kernels.json BENCH_kernels.json

echo "== bench_diff: gate sanity (self-compare clean, fixture regression trips) =="
./target/release/bench_diff BENCH_pipeline.json BENCH_pipeline.json
if ./target/release/bench_diff \
    crates/bench/tests/fixtures/pipeline_base.json \
    crates/bench/tests/fixtures/pipeline_regressed.json; then
    echo "bench_diff failed to flag the fixture regression" >&2
    exit 1
fi

echo "== pooled-executor smoke: plutoc --threads 4 --profile --trace on seidel-2d =="
# --trace triggers a real execution through the persistent-pool compiled
# engine; --profile-json must then carry the exec section (dispatches,
# imbalance) and the trace must hold the stable worker-slot timelines.
./target/release/plutoc --tile 8 --threads 4 --profile-json \
    --trace /tmp/pluto-ci-pool-trace.json examples/seidel-2d.c \
    > /tmp/pluto-ci-pool-profile.json
grep -q '"schema": "pluto-profile/3"' /tmp/pluto-ci-pool-profile.json
grep -q '"dispatches"' /tmp/pluto-ci-pool-profile.json
grep -q '"schema": "trace_event/1"' /tmp/pluto-ci-pool-trace.json

echo "== concurrent-compile smoke: per-session telemetry isolation =="
# In-process proof (the ISSUE 9 acceptance): all 13 example kernels
# compiled simultaneously on their own threads, each under a private
# ObsSession, must emit explain/profile documents identical to serial
# runs (tests/concurrent_compiles.rs — built by the suite above, rerun
# here by name so the gate is visible even when test output is terse).
cargo test --release --offline --test concurrent_compiles
# Process-level smoke: 9 parallel plutoc profile compiles (3 per shipped
# example). Every emitted document must carry the stable schema, and its
# counter totals must equal a serial reference run of the same kernel —
# concurrency may never leak into the deterministic counters.
# (--threads 1 keeps dependence analysis on one worker: with a team,
# two workers racing to the same emptiness-cache key can both miss,
# which is correct but makes hit/miss counts scheduling-dependent.)
for example in examples/*.c; do
    base=$(basename "$example" .c)
    ./target/release/plutoc --tile 8 --threads 1 --profile-json "$example" \
        > "/tmp/pluto-ci-conc-serial-$base.json"
done
for round in 1 2 3; do
    for example in examples/*.c; do
        base=$(basename "$example" .c)
        ./target/release/plutoc --tile 8 --threads 1 --profile-json "$example" \
            > "/tmp/pluto-ci-conc-par-$base-$round.json" &
    done
done
wait
for round in 1 2 3; do
    for example in examples/*.c; do
        base=$(basename "$example" .c)
        par="/tmp/pluto-ci-conc-par-$base-$round.json"
        grep -q '"schema": "pluto-profile/3"' "$par"
        grep -o '"name": "[a-z_.]*", "value": [0-9]*' \
            "/tmp/pluto-ci-conc-serial-$base.json" > /tmp/pluto-ci-conc-a.txt
        grep -o '"name": "[a-z_.]*", "value": [0-9]*' \
            "$par" > /tmp/pluto-ci-conc-b.txt
        cmp /tmp/pluto-ci-conc-a.txt /tmp/pluto-ci-conc-b.txt || {
            echo "counter totals diverge for $base (round $round)" >&2
            exit 1
        }
    done
done

echo "== daemon smoke: plutod stdio, 21 compiles with repeats, stats == sum of profiles =="
# One plutod process serves 7 rounds over the 3 shipped examples (21
# compile requests — 3 cold, 18 repeats) plus a final stats request.
# The gate asserts the pluto-rpc/1 / pluto-stats/1 / pluto-log/1 wire
# surface AND the aggregation invariant, re-derived hermetically: every
# counter in the stats document must equal the awk-sum of that counter
# over the 21 per-request pluto-profile/3 documents (PERFORMANCE.md
# §5.6). Sources are one-lined with tr; the examples contain no JSON
# metacharacters.
: > /tmp/pluto-ci-daemon-req.jsonl
i=0
for round in 1 2 3 4 5 6 7; do
    for example in examples/*.c; do
        i=$((i+1))
        printf '{"id": %d, "method": "compile", "source": "%s"}\n' \
            "$i" "$(tr '\n' ' ' < "$example")" >> /tmp/pluto-ci-daemon-req.jsonl
    done
done
printf '{"id": 99, "method": "stats"}\n' >> /tmp/pluto-ci-daemon-req.jsonl
./target/release/plutod < /tmp/pluto-ci-daemon-req.jsonl \
    > /tmp/pluto-ci-daemon-resp.jsonl 2> /tmp/pluto-ci-daemon-log.jsonl
[ "$(wc -l < /tmp/pluto-ci-daemon-resp.jsonl)" -eq 22 ]
# Wire schemas: every response is pluto-rpc/1, every stderr record is
# pluto-log/1, the final response carries the pluto-stats/1 aggregate.
[ "$(grep -c '"schema": "pluto-rpc/1"' /tmp/pluto-ci-daemon-resp.jsonl)" -eq 22 ]
[ "$(grep -c '"schema": "pluto-log/1"' /tmp/pluto-ci-daemon-log.jsonl)" -eq 22 ]
tail -n 1 /tmp/pluto-ci-daemon-resp.jsonl | grep -q '"schema": "pluto-stats/1"'
# The schedule cache worked: 3 cold misses, 18 hits, visible both in
# the per-request log lines and in the stats cache totals.
[ "$(grep -c '"cache": "miss"' /tmp/pluto-ci-daemon-log.jsonl)" -eq 3 ]
[ "$(grep -c '"cache": "hit"' /tmp/pluto-ci-daemon-log.jsonl)" -eq 18 ]
tail -n 1 /tmp/pluto-ci-daemon-resp.jsonl \
    | grep -o '"cache": {"hits": [0-9]*, "misses": [0-9]*' \
    | grep -q '"hits": 18, "misses": 3'
# The aggregation invariant: awk-sum each counter over the 21 compile
# responses, then compare name-by-name against the stats counters.
head -n 21 /tmp/pluto-ci-daemon-resp.jsonl \
    | grep -o '"name": "[a-z_.]*", "value": [0-9]*' \
    | awk -F'"' '{sum[$4] += substr($7, 3)}
                 END {for (n in sum) printf "%s %d\n", n, sum[n]}' \
    | sort > /tmp/pluto-ci-daemon-sum.txt
tail -n 1 /tmp/pluto-ci-daemon-resp.jsonl \
    | grep -o '"name": "[a-z_.]*", "value": [0-9]*' \
    | awk -F'"' '{printf "%s %d\n", $4, substr($7, 3)}' \
    | sort > /tmp/pluto-ci-daemon-stats.txt
cmp /tmp/pluto-ci-daemon-sum.txt /tmp/pluto-ci-daemon-stats.txt || {
    echo "pluto-stats/1 counters diverge from the sum of served profiles" >&2
    exit 1
}

echo "== trace smoke: plutoc --trace emits a valid trace_event/1 document =="
./target/release/plutoc --tile 8 --trace /tmp/pluto-ci-trace.json \
    examples/seidel-2d.c > /dev/null
grep -q '"schema": "trace_event/1"' /tmp/pluto-ci-trace.json
grep -q '"ph": "B"' /tmp/pluto-ci-trace.json

echo "== explain smoke: pluto-explain/1 + PL007 ledger cross-check per example =="
# --explain-json self-validates the emitted document with the in-tree
# RFC-8259 parser before printing; --analyze re-proves every decision-log
# satisfaction claim independently (PL007) AND translation-validates the
# compiled bytecode against the polyhedral source (PL008–PL013), so a
# clean exit per kernel means the telemetry, the static verifier, and the
# executor's compiler all agree. (The fuzz run above applies the same
# ledger + bytecode gates to all 200 random kernels via the oracle.)
for example in examples/*.c; do
    ./target/release/plutoc --explain-json --analyze "$example" \
        > /tmp/pluto-ci-explain.json
    grep -q '"schema": "pluto-explain/1"' /tmp/pluto-ci-explain.json
done

echo "== bytecode-verifier smoke: analyze/bytecode span + counters in profiles =="
# The verification cost must be attributed: an --analyze --profile-json
# run carries the analyze/bytecode phase and nonzero analyze.bytecode_*
# counters for a kernel with parallel dispatches.
./target/release/plutoc --tile 8 --analyze --profile-json \
    examples/seidel-2d.c > /tmp/pluto-ci-bytecode-profile.json 2>/dev/null
grep -q '"analyze/bytecode"' /tmp/pluto-ci-bytecode-profile.json
grep -q '"analyze.bytecode_accesses"' /tmp/pluto-ci-bytecode-profile.json

echo "== solver-cache smoke: compile-time shortcuts active + output-invariant =="
# The speed pass (DESIGN.md §11) must actually fire on the flagship
# kernel: a default seidel-2d compile reports nonzero emptiness-cache
# hits and nonzero pruned dependence candidates. And the shortcuts must
# be switchable off with bit-identical output: --no-solver-cache (cache
# off, warm-start off, pruning off) emits exactly the same C.
./target/release/plutoc --tile 8 --profile-json examples/seidel-2d.c \
    > /tmp/pluto-ci-cache-profile.json
grep -qE '"name": "ilp.cache_hits", "value": [1-9]' \
    /tmp/pluto-ci-cache-profile.json
grep -qE '"name": "ir.pruned_candidates", "value": [1-9]' \
    /tmp/pluto-ci-cache-profile.json
./target/release/plutoc --tile 8 examples/seidel-2d.c \
    > /tmp/pluto-ci-cache-on.c
./target/release/plutoc --tile 8 --no-solver-cache examples/seidel-2d.c \
    > /tmp/pluto-ci-cache-off.c
cmp /tmp/pluto-ci-cache-on.c /tmp/pluto-ci-cache-off.c

echo "== ci.sh: all gates passed =="
